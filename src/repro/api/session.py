""":class:`ThermalSession` — the one-stop Python API of the reproduction.

Before the facade existed every consumer hand-wired the same cross-cutting
state: the CLI built ``FVMSolver`` instances per invocation, the serving
backends kept their own LRU pools of factorisations, the evaluation runners
re-implemented the train/evaluate loop, and the examples did all of the
above again.  A session owns that state once:

* a **chip registry** — the built-in benchmark designs plus any custom
  :class:`~repro.chip.ChipStack` registered at runtime,
* **backend pools** — prepared :mod:`repro.api.backends` adapters (cached
  geometry, sparse LU factorisations, compact networks) with LRU eviction,
* a **model registry** of trained operator surrogates,
* a **result cache** keyed by ``(chip, resolution, backend, power-map
  hash)`` so repeated queries cost a dictionary lookup,

and exposes the whole workflow through a handful of methods::

    session = ThermalSession()
    answer  = session.solve("chip1", total_power_W=60, backend="fvm")
    data    = session.generate_dataset("chip1", resolution=32, num_samples=256)
    trained = session.train(data.split(0.8).train, method="sau_fno")
    report  = session.evaluate(trained, data.split(0.8).test)

The serving subsystem, the CLI, the evaluation harness and the examples are
all thin layers over this class.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.backends import (
    BACKEND_NAMES,
    Case,
    FVMBackendAdapter,
    HotSpotBackendAdapter,
    OperatorBackendAdapter,
    ThermalBackend,
    TransientBackendAdapter,
)
from repro.api.breaker import CircuitBreaker, CircuitOpenError
from repro.api.pool import (
    DEFAULT_POOL_SIZE,
    DEFAULT_RESULT_CACHE_BYTES,
    DEFAULT_RESULT_CACHE_SIZE,
    LRUPool,
    ResultCache,
)
from repro.api.registry import ModelRegistry
from repro.api.solution import ThermalSolution
from repro.chip import designs
from repro.chip.stack import ChipStack
from repro.data.dataset import ThermalDataset
from repro.data.generation import (
    DEFAULT_BATCH_SIZE,
    DatasetSpec,
    generate_dataset as _generate_dataset,
    generate_multifidelity_pair as _generate_multifidelity_pair,
)
from repro.data.power import (
    PowerCase,
    uniform_power_assignment,
    validate_power_assignment,
)
from repro.metrics.errors import MetricReport, evaluate_all
from repro.obs.bus import EventBus, publish_all
from repro.obs.events import BreakerTransition, CacheEviction
from repro.operators.factory import (
    LoadedOperator,
    build_operator,
    load_operator,
    save_operator,
)
from repro.operators.gar import GARRegressor
from repro.runtime.faults import FaultPlan
from repro.runtime.plane import DeadlineExceeded, ExecutionPlane, PlaneTask
from repro.runtime.tasks import (
    BackendSpec,
    backend_state_key,
    build_backend_adapter,
    solve_cases,
    warm_state,
)
from repro.solvers.factor import validate_factorization
from repro.solvers.hotspot import HotSpotModel
from repro.solvers.transient import PowerTrace
from repro.training.trainer import Trainer, TrainingConfig, TrainingHistory

#: Grid resolution used when a query does not specify one.
DEFAULT_RESOLUTION = 32

#: Backends a session dispatches onto its execution plane.  ``operator``
#: surrogates live in the parent session's model registry and solve inline;
#: ``hotspot`` answers in microseconds, so shipping it across a process
#: boundary would cost more than the solve — it stays inline too (its state
#: *can* be rebuilt on a worker, see :mod:`repro.runtime.tasks`).
PLANE_BACKENDS = ("fvm", "transient")

#: EWMA smoothing of the per-case plane latency estimate that drives the
#: adaptive batch-split decision — recent batches dominate so the estimate
#: tracks load shifts within a few batches.
ADAPTIVE_SPLIT_ALPHA = 0.3

#: Estimated whole-batch seconds below which splitting cannot pay: below
#: this, per-chunk dispatch overhead (task pickling, queue hops, extra warm
#: states) exceeds the parallel win and the batch travels whole.
ADAPTIVE_SPLIT_MIN_SECONDS = 0.05

#: The opt-in graceful-degradation order (``fallback=True``): when a
#: requested backend fails or its circuit breaker is open, the session walks
#: this chain and returns the first answer it can get, stamped
#: ``degraded: true`` in provenance.  Chains prefer physically faithful
#: surrogates first (a trained operator where one is registered) and end on
#: ``hotspot``, the compact model that practically cannot fail.
DEFAULT_FALLBACK_CHAIN: Dict[str, Tuple[str, ...]] = {
    "fvm": ("operator", "hotspot"),
    "transient": ("fvm", "hotspot"),
    "operator": ("hotspot",),
}

#: Threads of the session's lazily created async executor (behind
#: :meth:`ThermalSession.submit` / :meth:`ThermalSession.solve_many`).  The
#: threads mostly *wait* — plane-eligible backends dispatch the actual solve
#: onto the execution plane — so the count bounds concurrent fan-out groups,
#: not CPU use.
ASYNC_POOL_WORKERS = 8

#: Consecutive failures that open a backend's circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds an open breaker rests before letting one half-open probe through.
DEFAULT_BREAKER_COOLDOWN_S = 30.0

ChipLike = Union[str, ChipStack]


def _chip_fingerprint(chip: ChipStack) -> str:
    """Structural identity of a chip design (see :meth:`ChipStack.fingerprint`).

    Kept as a module-level helper for compatibility; the logic moved onto
    :class:`~repro.chip.stack.ChipStack` so the execution planes can embed
    the same identity in warm-state keys without importing the session.
    """
    return chip.fingerprint()


def _solution_nbytes(solution: ThermalSolution) -> int:
    """Approximate payload size of a solution for the cache byte budget."""
    size = 512  # scalars, hotspot dict, provenance
    if solution.layer_maps:
        size += sum(int(np.asarray(v).nbytes) for v in solution.layer_maps.values())
    if solution.values is not None:
        size += int(solution.values.nbytes)
    if solution.history:
        size += sum(int(np.asarray(v).nbytes) for v in solution.history.values())
    return size


def power_map_hash(assignment: Mapping[str, float]) -> str:
    """Deterministic digest of a flat power assignment.

    Result-cache keys embed it so two queries with the same per-block watts
    collide regardless of mapping order.  Floats are hashed by their exact
    IEEE bits — "close" powers are different queries.
    """
    digest = hashlib.sha1()
    for name in sorted(assignment):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(struct.pack("<d", float(assignment[name])))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Training result
# ----------------------------------------------------------------------
@dataclass
class TrainedOperator:
    """A model trained through :meth:`ThermalSession.train`.

    Bundles the model with the trainer that owns its normalisers (absent for
    the closed-form GAR baseline) so prediction, evaluation, persistence and
    serving registration are one call each.
    """

    method: str
    model: Any
    chip_name: Optional[str]
    resolution: Optional[int]
    train_seconds: float
    trainer: Optional[Trainer] = None
    history: Optional[TrainingHistory] = None

    @property
    def servable(self) -> bool:
        """Whether the model can be saved/registered for the serving stack."""
        return self.trainer is not None

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count (components for the GAR baseline)."""
        if isinstance(self.model, GARRegressor):
            return int(self.model.n_components)
        return int(self.model.num_parameters())

    def predict(self, inputs: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Temperature maps in kelvin for raw power-density inputs."""
        if self.trainer is not None:
            return self.trainer.predict(inputs, batch_size=batch_size)
        return self.model.predict(inputs)

    def evaluate(self, dataset: ThermalDataset) -> MetricReport:
        """Physical-unit metrics (the Table II bundle) on a dataset."""
        return evaluate_all(self.predict(dataset.inputs), dataset.targets)

    def inference_seconds_per_case(self, dataset: ThermalDataset, repeats: int = 3) -> float:
        """Median wall-clock prediction cost per case on a dataset."""
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        timings = []
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            self.predict(dataset.inputs)
            timings.append((time.perf_counter() - start) / len(dataset))
        return float(np.median(timings))

    def _require_servable(self, action: str) -> None:
        if not self.servable:
            raise ValueError(
                f"cannot {action} a '{self.method}' model: it has no trainer-owned "
                "normalisers (the closed-form GAR baseline is not servable)"
            )

    def save(self, path: str) -> None:
        """Persist weights + normalisers + chip/resolution provenance."""
        self._require_servable("save")
        save_operator(
            self.model,
            path,
            input_normalizer=self.trainer.input_normalizer,
            output_normalizer=self.trainer.output_normalizer,
            chip_name=self.chip_name,
            resolution=self.resolution,
        )

    def as_loaded(self) -> LoadedOperator:
        """A registry-ready view (what :func:`load_operator` would rebuild)."""
        self._require_servable("register")
        config = getattr(self.model, "config", {}) or {}
        return LoadedOperator(
            model=self.model,
            name=self.method,
            in_channels=int(config.get("in_channels", 0)),
            out_channels=int(config.get("out_channels", 0)),
            options=dict(config.get("options", {})),
            chip_name=self.chip_name,
            resolution=self.resolution,
            input_normalizer=self.trainer.input_normalizer,
            output_normalizer=self.trainer.output_normalizer,
        )


# ----------------------------------------------------------------------
# The session facade
# ----------------------------------------------------------------------
class ThermalSession:
    """Shared state + one call signature over every thermal engine.

    Parameters
    ----------
    pool_size:
        Prepared backend adapters kept resident per backend kind (LRU).
    cells_per_layer:
        Vertical discretisation used by the field solvers this session
        builds.
    factorization:
        SPD kernel choice (``"auto"``/``"cholesky"``/``"lu"``, see
        :mod:`repro.solvers.factor`) for every field solver this session
        builds — pooled fvm/transient adapters, plane warm-state specs and
        dataset generation all inherit it.  Adapter pools key on it, so two
        sessions sharing knobs but differing here never share a warm
        factorisation.
    result_cache_size:
        Memoised answers kept in the result cache.
    result_cache_max_bytes:
        Byte budget of the result cache; least-recently-used answers are
        evicted once the summed payload sizes exceed it.
    result_cache_ttl_s:
        Optional per-answer time-to-live in seconds; ``None`` (the default)
        keeps answers until evicted by the count/byte bounds.
    result_cache:
        A pre-built :class:`~repro.api.pool.ResultCache` to use instead of
        constructing one from the knobs above (tests inject a fake clock
        this way); mutually exclusive with the three cache parameters.
    models:
        An existing :class:`ModelRegistry` to share; a fresh one otherwise.
    operator_batch_size:
        Forward-pass batch size of the operator backend.
    plane:
        An optional :class:`~repro.runtime.plane.ExecutionPlane` this
        session dispatches its batched field solves onto (see
        :data:`PLANE_BACKENDS`).  ``None`` — the default — solves inline on
        the calling thread, exactly the historical behaviour.  The caller
        owns the plane's lifecycle (``close()`` it, or use it as a context
        manager); one plane may be shared by several sessions.
    breaker_threshold:
        Consecutive solve failures that open a backend's circuit breaker
        (see :class:`~repro.api.breaker.CircuitBreaker`).
    breaker_cooldown_s:
        Seconds an open breaker rests before letting one probe through.
    fallback:
        Graceful degradation.  ``False`` (default): a failing backend
        raises, an open breaker raises
        :class:`~repro.api.breaker.CircuitOpenError`.  ``True``: walk
        :data:`DEFAULT_FALLBACK_CHAIN` and return the first obtainable
        answer, stamped ``degraded: true`` in provenance (and never
        cached).  A mapping of ``backend -> (fallback, ...)`` names
        customises the chains.
    faults:
        An optional chaos :class:`~repro.runtime.faults.FaultPlan`; its
        backend directives fire inside this session's solve path.
    """

    def __init__(
        self,
        pool_size: int = DEFAULT_POOL_SIZE,
        cells_per_layer: int = 2,
        factorization: str = "auto",
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_cache_max_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
        result_cache_ttl_s: Optional[float] = None,
        result_cache: Optional[ResultCache] = None,
        models: Optional[ModelRegistry] = None,
        operator_batch_size: int = 32,
        plane: Optional[ExecutionPlane] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        fallback: Union[bool, Mapping[str, Sequence[str]]] = False,
        faults: Optional[FaultPlan] = None,
    ):
        self.cells_per_layer = cells_per_layer
        self.factorization = validate_factorization(factorization)
        self.operator_batch_size = operator_batch_size
        self.plane = plane
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.faults = faults
        if fallback is True:
            self.fallback_chain: Dict[str, Tuple[str, ...]] = dict(DEFAULT_FALLBACK_CHAIN)
        elif fallback is False or fallback is None:
            self.fallback_chain = {}
        else:
            self.fallback_chain = {
                str(name): tuple(str(alt) for alt in alternates)
                for name, alternates in dict(fallback).items()
            }
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._reliability_lock = threading.Lock()
        self._fallbacks = 0
        self._breaker_rejections = 0
        # Plane-dispatch bookkeeping: a per-state-key EWMA of observed
        # per-case solve seconds feeds the adaptive batch-split decision in
        # _solve_batch_on_plane; the counters surface in stats()["dispatch"].
        self._dispatch_lock = threading.Lock()
        self._latency_ewma: Dict[Tuple, float] = {}
        self._plane_batches = 0
        self._split_batches = 0
        self._adaptive_splits = 0
        self._chips: Dict[str, ChipStack] = {}
        self._pools: Dict[str, LRUPool] = {
            name: LRUPool(pool_size) for name in ("fvm", "hotspot", "transient")
        }
        self.models = models if models is not None else ModelRegistry(self.get_chip)
        if result_cache is not None and (
            result_cache_size != DEFAULT_RESULT_CACHE_SIZE
            or result_cache_max_bytes != DEFAULT_RESULT_CACHE_BYTES
            or result_cache_ttl_s is not None
        ):
            raise ValueError(
                "pass either a pre-built result_cache or the cache size/bytes/ttl "
                "knobs, not both"
            )
        # `is not None`, not truthiness: an empty ResultCache has len() == 0
        # and would be silently replaced.
        self.result_cache = (
            result_cache
            if result_cache is not None
            else ResultCache(
                result_cache_size,
                max_bytes=result_cache_max_bytes,
                ttl_s=result_cache_ttl_s,
            )
        )
        #: Telemetry bus (set via :meth:`attach_events`); ``None`` keeps
        #: every emission site a no-op.
        self.events: Optional[EventBus] = None
        self.result_cache.eviction_listener = self._on_cache_eviction
        # Async facade: the executor behind submit()/solve_many(), built on
        # first use so synchronous-only sessions never spawn threads.
        self._async_lock = threading.Lock()
        self._async_pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_events(self, bus: EventBus) -> None:
        """Publish this session's telemetry onto ``bus``.

        Wires the result cache's eviction listener, every existing (and
        future) circuit breaker's transition listener, and — if the session
        drives an execution plane that has no bus yet — the plane's
        worker-death/retry events.  Safe to call once after construction;
        sessions without a bus emit nothing.
        """
        self.events = bus
        if self.plane is not None and getattr(self.plane, "events", None) is None:
            self.plane.attach_events(bus)

    def _on_cache_eviction(self, cause: str, key: Any) -> None:
        publish_all(
            self.events, [CacheEviction(source="session", cause=cause, key=str(key))]
        )

    def _on_breaker_transition(
        self, backend: str, old_state: str, new_state: str, streak: int
    ) -> None:
        publish_all(
            self.events,
            [
                BreakerTransition(
                    source="session",
                    backend=backend,
                    from_state=old_state,
                    to_state=new_state,
                    consecutive_failures=streak,
                )
            ],
        )

    # ------------------------------------------------------------------
    # Chips
    # ------------------------------------------------------------------
    def register_chip(self, chip: ChipStack) -> ChipStack:
        """Make a custom design addressable by name in this session.

        Re-registering a structurally *different* design under an existing
        name evicts every pooled adapter and cached answer for that name —
        otherwise the session would keep solving against the old geometry.
        Re-registering an equivalent design (e.g. a freshly rebuilt object)
        keeps the already-registered instance and all its warm state.
        """
        previous = self._chips.get(chip.name)
        if previous is not None and previous is not chip:
            if _chip_fingerprint(previous) == _chip_fingerprint(chip):
                return previous  # same design: keep warm pools and caches
            self.invalidate_chip(chip.name)
        self._chips[chip.name] = chip
        return chip

    def invalidate_chip(self, chip_name: str) -> None:
        """Drop every pooled adapter and cached answer for one chip."""
        for pool in self._pools.values():
            pool.discard_where(
                lambda key: (key[0] if isinstance(key, tuple) else key) == chip_name
            )
        self.result_cache.discard_where(lambda key: key[0] == chip_name)

    def get_chip(self, name: str) -> ChipStack:
        """Resolve a chip name (case-insensitive) to its :class:`ChipStack`.

        Custom designs registered through :meth:`register_chip` shadow the
        built-in benchmark designs of the same name.
        """
        if name in self._chips:
            return self._chips[name]
        lowered = str(name).lower()
        for registered, chip in self._chips.items():
            if registered.lower() == lowered:
                return chip
        return designs.get_chip(name)

    def list_chips(self) -> List[str]:
        """Every addressable chip name: built-ins first, then custom designs."""
        return list(designs.list_chips()) + sorted(
            name for name in self._chips if name not in designs.list_chips()
        )

    def _resolve_chip(self, chip: ChipLike) -> ChipStack:
        if isinstance(chip, ChipStack):
            # Auto-register so follow-up queries can address it by name.
            # register_chip keeps the already-registered instance for an
            # equivalent design (preserving warm pools) and invalidates
            # stale state when the name was taken by a different design.
            return self.register_chip(chip)
        return self.get_chip(str(chip))

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def load_model(self, path: str) -> LoadedOperator:
        """Load a saved operator ``.npz`` into the session's registry."""
        loaded = self.models.register_file(path)
        self._invalidate_operator_answers(loaded)
        return loaded

    def register_model(self, loaded: LoadedOperator, path: str = "<memory>") -> None:
        """Register an in-memory operator for its trained chip/resolution."""
        self.models.register(loaded, path=path)
        self._invalidate_operator_answers(loaded)

    def _invalidate_operator_answers(self, loaded: LoadedOperator) -> None:
        """Evict cached answers the replaced surrogate produced.

        A registration replaces whatever model previously served this
        ``(chip, resolution)``; without eviction a hot-reloaded retrained
        model would keep serving the old model's cached predictions.
        """
        chip_name, resolution = loaded.chip_name, int(loaded.resolution)
        self.result_cache.discard_where(
            lambda key: key[0] == chip_name
            and key[1] == resolution
            and key[2] == "operator"
        )

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def backends(self) -> Tuple[str, ...]:
        """Names of the backend kinds this session can build, registry order."""
        return BACKEND_NAMES

    def pool(self, backend: str) -> LRUPool:
        """The LRU pool of prepared adapters for one pooled backend kind."""
        if backend not in self._pools:
            raise KeyError(
                f"backend '{backend}' has no adapter pool; pooled backends: "
                f"{', '.join(sorted(self._pools))}"
            )
        return self._pools[backend]

    def backend(
        self, name: str, chip: ChipLike, resolution: int = DEFAULT_RESOLUTION
    ) -> ThermalBackend:
        """A (pooled) prepared :class:`ThermalBackend` adapter.

        ``fvm`` / ``hotspot`` / ``transient`` adapters are built once per
        ``(chip, resolution)`` and kept in LRU pools; ``operator`` adapters
        are a thin view over the registry's loaded model and built on demand.
        """
        chip_stack = self._resolve_chip(chip)
        resolution = int(resolution)
        # The factorization knob rides in the pool key so adapters warmed
        # under one kernel request are never handed to a session configured
        # for another (pools may be shared through a shared ModelRegistry
        # or cloned sessions).
        key = (chip_stack.name, resolution, self.factorization)
        if name == "fvm":
            return self._pools["fvm"].get(
                key,
                lambda: FVMBackendAdapter(
                    chip_stack,
                    resolution,
                    cells_per_layer=self.cells_per_layer,
                    factorization=self.factorization,
                ).prepare(),
            )
        if name == "hotspot":
            # The RC network is resolution-independent (resolution only
            # rasterises the optional maps), so the factorised model is
            # pooled per chip and wrapped per call.
            model = self._pools["hotspot"].get(
                chip_stack.name, lambda: HotSpotModel(chip_stack)
            )
            return HotSpotBackendAdapter(chip_stack, resolution, model=model)
        if name == "transient":
            return self._pools["transient"].get(
                key,
                lambda: TransientBackendAdapter(
                    chip_stack,
                    resolution,
                    cells_per_layer=self.cells_per_layer,
                    factorization=self.factorization,
                ),
            )
        if name == "operator":
            loaded = self.models.lookup(chip_stack.name, resolution)
            return OperatorBackendAdapter(
                chip_stack, loaded, batch_size=self.operator_batch_size
            )
        raise ValueError(
            f"unknown backend '{name}'; available: {', '.join(BACKEND_NAMES)}"
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _coerce_assignment(
        self,
        chip_stack: ChipStack,
        powers: Union[Case, float, None],
        total_power_W: Optional[float] = None,
    ) -> Dict[str, float]:
        if powers is not None and total_power_W is not None:
            raise ValueError("specify either 'powers' or 'total_power_W', not both")
        if powers is None:
            return uniform_power_assignment(chip_stack, total_power_W)
        if isinstance(powers, PowerCase):
            return validate_power_assignment(chip_stack, powers.assignment)
        if isinstance(powers, bool):
            raise TypeError("'powers' cannot be a boolean")
        if isinstance(powers, (int, float)):
            return uniform_power_assignment(chip_stack, float(powers))
        if isinstance(powers, Mapping):
            return validate_power_assignment(chip_stack, powers)
        raise TypeError(
            "'powers' must be a mapping of 'layer/block' to watts, a PowerCase "
            f"or a total power in watts, got {type(powers).__name__}"
        )

    def solve(
        self,
        chip: ChipLike,
        powers: Union[Case, float, None] = None,
        *,
        total_power_W: Optional[float] = None,
        resolution: int = DEFAULT_RESOLUTION,
        backend: str = "fvm",
        include_maps: bool = False,
        include_values: bool = False,
        use_cache: bool = True,
    ) -> ThermalSolution:
        """Answer one power-map query with any backend.

        ``powers`` accepts a flat ``"layer/block" -> watts`` mapping, a
        :class:`~repro.data.power.PowerCase`, or a bare number (total watts
        spread uniformly); omitted entirely, ``total_power_W`` (or the chip
        budget midpoint) is spread uniformly.  Repeated identical queries hit
        the session result cache (``solution.cached``).
        """
        chip_stack = self._resolve_chip(chip)
        assignment = self._coerce_assignment(chip_stack, powers, total_power_W)
        return self.solve_batch(
            chip_stack,
            [assignment],
            resolution=resolution,
            backend=backend,
            include_maps=include_maps,
            include_values=include_values,
            use_cache=use_cache,
        )[0]

    def solve_batch(
        self,
        chip: ChipLike,
        cases: Sequence[Union[Case, float]],
        *,
        resolution: int = DEFAULT_RESOLUTION,
        backend: str = "fvm",
        include_maps: bool = False,
        include_values: bool = False,
        use_cache: bool = True,
        plane: Optional[ExecutionPlane] = None,
        deadline: Optional[float] = None,
    ) -> List[ThermalSolution]:
        """Answer many power cases in one batched backend call.

        Cached answers are returned immediately; only the misses reach the
        backend, together, so a warm cache turns a batch into one dictionary
        pass and the cold remainder still amortises the factorisation.

        ``plane`` (default: the session's configured plane) routes the miss
        batch of a plane-eligible backend (:data:`PLANE_BACKENDS`) onto an
        execution plane: small batches travel whole to the worker owning
        the key's warm state, while batches large enough to feed every
        worker are split into per-worker chunks — each worker warms its own
        factorisation, so a big batch genuinely runs on several cores.  The
        answers are bitwise-identical to inline solving either way.

        ``deadline`` (absolute ``time.monotonic()`` seconds) propagates to
        the plane tasks and is re-checked before each solve attempt;
        expired work raises :class:`~repro.runtime.plane.DeadlineExceeded`
        instead of burning solver time.  Cached answers are still served —
        a dictionary lookup beats any deadline worth having.

        When the session was built with ``fallback`` enabled, a failing (or
        breaker-open) backend degrades to its fallback chain instead of
        raising; degraded answers carry ``degraded: true`` plus the
        ``requested_backend`` in provenance and are never cached.
        """
        chip_stack = self._resolve_chip(chip)
        assignments = [self._coerce_assignment(chip_stack, case) for case in cases]
        if not assignments:
            return []
        resolution = int(resolution)
        # Full 3-D fields are too large to memoise profitably (and such
        # calls are interactive one-offs); only summary/map answers cache.
        use_cache = use_cache and not include_values
        detail = (bool(include_maps), bool(include_values))
        solutions: List[Optional[ThermalSolution]] = [None] * len(assignments)
        misses = list(range(len(assignments)))
        keys: List[Optional[Tuple]] = [None] * len(assignments)
        if use_cache:
            misses = []
            for index, assignment in enumerate(assignments):
                key = (
                    chip_stack.name,
                    resolution,
                    backend,
                    # Kernel hygiene: a shared/injected ResultCache must never
                    # serve an answer produced under another factorization.
                    self.factorization,
                    power_map_hash(assignment),
                    detail,
                )
                keys[index] = key
                hit = self.result_cache.get(key)
                if hit is not None:
                    solutions[index] = hit.clone(
                        provenance={**hit.provenance, "cached": True}
                    )
                else:
                    misses.append(index)
        if misses:
            plane = plane if plane is not None else self.plane
            miss_assignments = [assignments[index] for index in misses]
            solved, producer = self._solve_misses(
                plane,
                chip_stack,
                resolution,
                backend,
                miss_assignments,
                include_maps=include_maps,
                include_values=include_values,
                deadline=deadline,
            )
            degraded = producer != backend
            for index, solution in zip(misses, solved):
                solutions[index] = solution
                if use_cache and not degraded:
                    # Store a pristine clone: consumers (the serving engine)
                    # stamp latency/batch metadata onto what we return.
                    # Degraded answers are never cached — the real backend
                    # must get to answer again once it recovers.
                    self.result_cache.put(
                        keys[index], solution.clone(), _solution_nbytes(solution)
                    )
        return solutions  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Async facade
    # ------------------------------------------------------------------
    def _async_executor(self) -> ThreadPoolExecutor:
        with self._async_lock:
            if self._async_pool is None:
                self._async_pool = ThreadPoolExecutor(
                    max_workers=ASYNC_POOL_WORKERS,
                    thread_name_prefix="session-async",
                )
            return self._async_pool

    def submit(
        self,
        chip: ChipLike,
        powers: Union[Case, float, None] = None,
        *,
        total_power_W: Optional[float] = None,
        resolution: int = DEFAULT_RESOLUTION,
        backend: str = "fvm",
        include_maps: bool = False,
        include_values: bool = False,
        use_cache: bool = True,
        deadline: Optional[float] = None,
    ) -> Future:
        """Asynchronous :meth:`solve`: returns a future, never blocks.

        The query is validated eagerly (bad input raises here, not inside
        the future) and solved on the session's async executor; the future
        resolves to the same :class:`ThermalSolution` the blocking call
        would return, including cache hits and fallback/breaker semantics.
        ``deadline`` (absolute ``time.monotonic()`` seconds) propagates
        exactly as in :meth:`solve_batch`.
        """
        chip_stack = self._resolve_chip(chip)
        assignment = self._coerce_assignment(chip_stack, powers, total_power_W)
        return self._async_executor().submit(
            lambda: self.solve_batch(
                chip_stack,
                [assignment],
                resolution=resolution,
                backend=backend,
                include_maps=include_maps,
                include_values=include_values,
                use_cache=use_cache,
                deadline=deadline,
            )[0]
        )

    def solve_many(
        self,
        queries: Sequence[Mapping[str, Any]],
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> List[ThermalSolution]:
        """Answer many heterogeneous queries concurrently in one call.

        ``queries`` is a sequence of mappings with the :meth:`solve`
        keywords (``chip`` required; ``powers`` / ``total_power_W`` /
        ``resolution`` / ``backend`` / ``include_maps`` /
        ``include_values`` / ``use_cache`` optional).  Queries sharing
        ``(chip, resolution, backend, detail)`` are coalesced into one
        batched solve — which rides the execution plane when the session
        drives one — and distinct groups run concurrently on the async
        executor, so a fan-out across chips costs the wall-clock of its
        slowest group instead of the sum.  Results come back in query
        order; ``timeout`` bounds the *whole* call, not each group.
        """
        prepared: List[Tuple[int, Dict[str, float]]] = []
        groups: Dict[Tuple, Dict[str, Any]] = {}
        for index, query in enumerate(queries):
            if not isinstance(query, Mapping):
                raise TypeError(
                    f"query {index} must be a mapping of solve() keywords, "
                    f"got {type(query).__name__}"
                )
            options = dict(query)
            if "chip" not in options:
                raise ValueError(f"query {index} is missing the required 'chip' field")
            chip_stack = self._resolve_chip(options.pop("chip"))
            assignment = self._coerce_assignment(
                chip_stack, options.pop("powers", None), options.pop("total_power_W", None)
            )
            key = (
                chip_stack.name,
                int(options.pop("resolution", DEFAULT_RESOLUTION)),
                str(options.pop("backend", "fvm")),
                bool(options.pop("include_maps", False)),
                bool(options.pop("include_values", False)),
                bool(options.pop("use_cache", True)),
            )
            if options:
                raise ValueError(
                    f"query {index} has unknown fields: {', '.join(sorted(options))}"
                )
            group = groups.setdefault(
                key, {"chip": chip_stack, "indices": [], "assignments": []}
            )
            group["indices"].append(index)
            group["assignments"].append(assignment)
            prepared.append((index, assignment))
        if not prepared:
            return []
        executor = self._async_executor()
        futures = []
        for key, group in groups.items():
            _, resolution, backend, include_maps, include_values, use_cache = key
            futures.append(
                (
                    group["indices"],
                    executor.submit(
                        self.solve_batch,
                        group["chip"],
                        group["assignments"],
                        resolution=resolution,
                        backend=backend,
                        include_maps=include_maps,
                        include_values=include_values,
                        use_cache=use_cache,
                        deadline=deadline,
                    ),
                )
            )
        collect_deadline = None if timeout is None else time.monotonic() + timeout
        solutions: List[Optional[ThermalSolution]] = [None] * len(prepared)
        for indices, future in futures:
            remaining = (
                None
                if collect_deadline is None
                else max(collect_deadline - time.monotonic(), 0.0)
            )
            for index, solution in zip(indices, future.result(timeout=remaining)):
                solutions[index] = solution
        return solutions  # type: ignore[return-value]

    def _solve_misses(
        self,
        plane: Optional[ExecutionPlane],
        chip_stack: ChipStack,
        resolution: int,
        backend: str,
        assignments: List[Dict[str, float]],
        *,
        include_maps: bool,
        include_values: bool,
        deadline: Optional[float],
    ) -> Tuple[List[ThermalSolution], str]:
        """Solve one miss batch through the breaker + fallback chain.

        Returns ``(solutions, producer)`` where ``producer`` is the backend
        that actually answered.  Walks ``(backend, *fallback_chain)``: a
        candidate whose breaker is open is skipped (counted as a
        rejection), a candidate that cannot serve the request shape (no
        registered model, no 3-D field capability) is skipped without
        touching its breaker, and a candidate whose *solve* fails records a
        breaker failure before the next one is tried.  With no fallback
        configured the chain is just the requested backend and errors
        surface exactly as before.
        """
        chain = (backend,) + self.fallback_chain.get(backend, ())
        first_error: Optional[BaseException] = None
        for candidate in chain:
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded(
                    f"request deadline expired before backend '{candidate}' "
                    "could start solving"
                )
            try:
                solve = self._prepare_candidate(
                    plane,
                    chip_stack,
                    resolution,
                    candidate,
                    assignments,
                    include_maps=include_maps,
                    include_values=include_values,
                    deadline=deadline,
                )
            except Exception as error:  # noqa: BLE001 — config, not health
                # The candidate cannot serve this request *shape* (unknown
                # backend, no registered model, no field capability): skip
                # it without charging its breaker.
                first_error = first_error if first_error is not None else error
                continue
            breaker = self._breaker(candidate)
            if not breaker.allow():
                with self._reliability_lock:
                    self._breaker_rejections += 1
                if first_error is None:
                    first_error = CircuitOpenError(
                        f"circuit breaker for backend '{candidate}' is open "
                        f"(cooldown {breaker.cooldown_s:.0f}s)"
                    )
                continue
            try:
                if self.faults is not None:
                    self.faults.on_backend_solve(candidate)
                solved = solve()
            except DeadlineExceeded:
                # A shed is the deadline's fault, not the backend's: leave
                # the breaker verdict-free and stop the whole chain.
                breaker.release_probe()
                raise
            except Exception as error:  # noqa: BLE001 — fall through chain
                breaker.record_failure()
                first_error = first_error if first_error is not None else error
                continue
            breaker.record_success()
            if candidate != backend:
                with self._reliability_lock:
                    self._fallbacks += len(assignments)
                for solution in solved:
                    solution.provenance["degraded"] = True
                    solution.provenance["requested_backend"] = backend
            return solved, candidate
        assert first_error is not None  # chain is never empty
        raise first_error

    def _prepare_candidate(
        self,
        plane: Optional[ExecutionPlane],
        chip_stack: ChipStack,
        resolution: int,
        candidate: str,
        assignments: List[Dict[str, float]],
        *,
        include_maps: bool,
        include_values: bool,
        deadline: Optional[float],
    ) -> Callable[[], List[ThermalSolution]]:
        """A zero-argument solve closure for one fallback-chain candidate.

        Raises immediately (before any breaker bookkeeping) when the
        candidate cannot serve the request shape at all.
        """
        if plane is not None and candidate in PLANE_BACKENDS:
            return lambda: self._solve_batch_on_plane(
                plane,
                chip_stack,
                resolution,
                candidate,
                assignments,
                include_maps=include_maps,
                include_values=include_values,
                deadline=deadline,
            )
        adapter = self.backend(candidate, chip_stack, resolution)
        if include_values and not adapter.capabilities().get("values", False):
            raise ValueError(
                f"backend '{candidate}' cannot produce a 3-D field; drop "
                "include_values or use a field backend (fvm, transient)"
            )
        return lambda: adapter.solve_batch(
            assignments,
            include_maps=include_maps,
            include_values=include_values,
        )

    # ------------------------------------------------------------------
    # Reliability
    # ------------------------------------------------------------------
    def _breaker(self, backend: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker of one backend name."""
        with self._breaker_lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                    listener=(
                        lambda old, new, streak, _name=backend:
                        self._on_breaker_transition(_name, old, new, streak)
                    ),
                )
                self._breakers[backend] = breaker
            return breaker

    def open_breakers(self) -> List[str]:
        """Backends currently refusing work (open *or* half-open breakers).

        ``/healthz`` reports ``degraded`` while this list is non-empty: a
        half-open breaker is still recovering and most traffic to it is
        refused until its probe succeeds.
        """
        with self._breaker_lock:
            breakers = list(self._breakers.items())
        return sorted(name for name, breaker in breakers if breaker.state != "closed")

    def _solve_batch_on_plane(
        self,
        plane: ExecutionPlane,
        chip_stack: ChipStack,
        resolution: int,
        backend: str,
        assignments: List[Dict[str, float]],
        *,
        include_maps: bool,
        include_values: bool,
        deadline: Optional[float] = None,
    ) -> List[ThermalSolution]:
        """Dispatch one homogeneous miss batch onto an execution plane.

        The batch becomes one task (routed by warm-state key affinity) when
        it is small, or ``plane.workers`` chunk tasks pinned to distinct
        worker slots when splitting pays — the chunk results are
        re-concatenated in order, so callers see exactly the inline answer
        list (chunked answers are bitwise-identical to whole-batch ones).

        The split decision is adaptive: a batch deep enough to feed every
        worker twice always splits (the historical static rule), and a
        smaller batch (>= one case per worker) splits when the live
        per-case latency EWMA for this state key says the whole batch
        would cost at least :data:`ADAPTIVE_SPLIT_MIN_SECONDS` — heavy
        keys (high resolutions) split earlier, trivial keys never pay the
        chunk-dispatch overhead.  Splits the static rule would not have
        made are counted as ``adaptive_splits`` in :meth:`stats`.
        """
        spec = BackendSpec(
            chip=chip_stack,
            resolution=resolution,
            backend=backend,
            cells_per_layer=self.cells_per_layer,
            factorization=self.factorization,
        )
        key = backend_state_key(spec)
        count = len(assignments)
        with self._dispatch_lock:
            per_case_s = self._latency_ewma.get(key)
        static_split = plane.workers > 1 and count >= 2 * plane.workers
        adaptive_split = (
            not static_split
            and plane.workers > 1
            and count >= plane.workers
            and per_case_s is not None
            and count * per_case_s >= ADAPTIVE_SPLIT_MIN_SECONDS
        )
        if static_split or adaptive_split:
            bounds = np.linspace(0, count, plane.workers + 1).astype(int)
            chunks = [
                (slot, assignments[bounds[slot]:bounds[slot + 1]])
                for slot in range(plane.workers)
                if bounds[slot] < bounds[slot + 1]
            ]
        else:
            chunks = [(None, assignments)]
        tasks = [
            PlaneTask(
                fn=solve_cases,
                payload={
                    "assignments": chunk,
                    "include_maps": include_maps,
                    "include_values": include_values,
                },
                state_key=key,
                state_factory=build_backend_adapter,
                state_spec=spec,
                affinity=slot,
                deadline=deadline,
            )
            for slot, chunk in chunks
        ]
        started = time.perf_counter()
        solved: List[ThermalSolution] = []
        for chunk_solutions in plane.run_all(tasks):
            solved.extend(chunk_solutions)
        elapsed = time.perf_counter() - started
        # Chunks run concurrently, so wall-clock over the batch times the
        # chunk count approximates one worker's sequential per-case cost.
        per_case_observed = elapsed * len(chunks) / count
        with self._dispatch_lock:
            previous = self._latency_ewma.get(key)
            self._latency_ewma[key] = (
                per_case_observed
                if previous is None
                else ADAPTIVE_SPLIT_ALPHA * per_case_observed
                + (1.0 - ADAPTIVE_SPLIT_ALPHA) * previous
            )
            self._plane_batches += 1
            if len(chunks) > 1:
                self._split_batches += 1
            if adaptive_split:
                self._adaptive_splits += 1
        return solved

    def solve_transient(
        self,
        chip: ChipLike,
        power_trace: PowerTrace,
        duration_s: float,
        dt_s: float,
        *,
        resolution: int = DEFAULT_RESOLUTION,
        store_every: int = 1,
        initial_field: Optional[np.ndarray] = None,
        include_maps: bool = False,
        include_values: bool = False,
    ) -> ThermalSolution:
        """Integrate a (possibly time-varying) power trace.

        The returned :class:`ThermalSolution` summarises the final snapshot
        and carries the peak/mean time histories in ``solution.history``.
        Traces are not cacheable, so this path bypasses the result cache.
        """
        adapter = self.backend("transient", chip, resolution)
        return adapter.solve_trace(
            power_trace,
            duration_s,
            dt_s,
            store_every=store_every,
            initial_field=initial_field,
            include_maps=include_maps,
            include_values=include_values,
        )

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm_up(
        self,
        keys: Sequence[Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Pre-build solver state for a set of group keys before traffic.

        ``keys`` is a sequence of ``(chip, resolution, backend)`` triples or
        ``{"chip": ..., "resolution": ..., "backend": ...}`` mappings.
        Plane-eligible backends (:data:`PLANE_BACKENDS`, when this session
        drives a plane) warm through
        :meth:`~repro.runtime.plane.ExecutionPlane.warm_up`, building each
        key's factorisation on the worker that owns it; everything else
        warms by touching the session's adapter pools inline.  Returns
        ``{"warmed": [labels...], "errors": {label: message}}``.

        This is the session half of the fleet warm-up protocol: a replica
        answering ``POST /warm_up`` calls this so a (re)joining node
        pre-factorizes its key slice before the router admits traffic.
        """
        warmed: List[str] = []
        errors: Dict[str, str] = {}
        plane_jobs: List[Tuple[str, PlaneTask]] = []
        for entry in keys:
            if isinstance(entry, Mapping):
                chip_name = entry.get("chip")
                resolution = entry.get("resolution", DEFAULT_RESOLUTION)
                backend = entry.get("backend", "fvm")
            else:
                chip_name, resolution, backend = entry
            label = f"{chip_name}/{resolution}/{backend}"
            try:
                chip_stack = self._resolve_chip(chip_name)
                resolution = int(resolution)
                backend = str(backend)
                if self.plane is not None and backend in PLANE_BACKENDS:
                    spec = BackendSpec(
                        chip=chip_stack,
                        resolution=resolution,
                        backend=backend,
                        cells_per_layer=self.cells_per_layer,
                        factorization=self.factorization,
                    )
                    plane_jobs.append(
                        (
                            label,
                            PlaneTask(
                                fn=warm_state,
                                state_key=backend_state_key(spec),
                                state_factory=build_backend_adapter,
                                state_spec=spec,
                            ),
                        )
                    )
                else:
                    # Pool touch: building the adapter is the warm-up.
                    self.backend(backend, chip_stack, resolution)
                    warmed.append(label)
            except Exception as error:  # noqa: BLE001 — collected per key
                errors[label] = str(error)
        if plane_jobs:
            # Submit every plane job before collecting so distinct keys warm
            # concurrently on their owning workers; errors stay per-key.
            futures = [
                (label, self.plane.submit(task)) for label, task in plane_jobs
            ]
            for label, future in futures:
                try:
                    future.result(timeout=timeout)
                    warmed.append(label)
                except Exception as error:  # noqa: BLE001
                    errors[label] = str(error)
        return {"warmed": warmed, "errors": errors}

    # ------------------------------------------------------------------
    # Dataset generation
    # ------------------------------------------------------------------
    def generate_dataset(
        self,
        chip: ChipLike = "chip1",
        resolution: int = DEFAULT_RESOLUTION,
        num_samples: int = 64,
        seed: int = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        verbose: bool = False,
        plane: Optional[ExecutionPlane] = None,
        **spec_options: Any,
    ) -> ThermalDataset:
        """Generate a (power map -> temperature field) training dataset.

        Runs the prepare-once / solve-many FVM pipeline, sharded across
        ``plane`` (default: the session's configured plane, else inline
        serial); ``spec_options`` forwards the remaining
        :class:`~repro.data.generation.DatasetSpec` fields (``core_bias``,
        ``idle_probability``, ``total_power_range_W``).
        """
        chip_stack = self._resolve_chip(chip)
        spec = DatasetSpec(
            chip_name=chip_stack.name,
            resolution=int(resolution),
            num_samples=int(num_samples),
            seed=seed,
            cells_per_layer=self.cells_per_layer,
            factorization=self.factorization,
            **spec_options,
        )
        return _generate_dataset(
            spec,
            chip=chip_stack,
            verbose=verbose,
            batch_size=batch_size,
            plane=plane if plane is not None else self.plane,
        )

    def generate_multifidelity_pair(
        self,
        chip: ChipLike,
        low_resolution: int,
        high_resolution: int,
        num_low: int,
        num_high: int,
        seed: int = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        plane: Optional[ExecutionPlane] = None,
        share_geometry: bool = True,
    ) -> Tuple[ThermalDataset, ThermalDataset]:
        """The low/high-fidelity dataset pair used by transfer learning.

        When the high resolution is an integer multiple of the low (and
        ``share_geometry`` is left on), the chip is voxelised once at the
        high resolution and the low-fidelity geometry is derived by
        :meth:`~repro.solvers.voxelize.GridGeometry.coarsen`, sharing the
        vertical layout and floorplan rasters across the pair.
        """
        chip_stack = self._resolve_chip(chip)
        return _generate_multifidelity_pair(
            chip_stack.name,
            low_resolution,
            high_resolution,
            num_low,
            num_high,
            seed=seed,
            cells_per_layer=self.cells_per_layer,
            batch_size=batch_size,
            chip=chip_stack,
            plane=plane if plane is not None else self.plane,
            share_geometry=share_geometry,
        )

    # ------------------------------------------------------------------
    # Training and evaluation
    # ------------------------------------------------------------------
    def train(
        self,
        train_data: ThermalDataset,
        method: str = "sau_fno",
        config: Optional[Dict[str, Any]] = None,
        training: Optional[TrainingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        register: bool = False,
    ) -> TrainedOperator:
        """Train one operator baseline on a dataset.

        Handles both the gradient-trained models (FNO family, DeepOHeat) and
        the closed-form GAR baseline transparently.  With ``register=True``
        the trained surrogate immediately becomes servable through this
        session's ``operator`` backend.
        """
        method_key = method.lower().replace("-", "_")
        training = training or TrainingConfig()
        rng = rng if rng is not None else np.random.default_rng(training.seed)
        model = build_operator(
            method_key,
            train_data.num_input_channels,
            train_data.num_output_channels,
            dict(config or {}),
            rng,
        )
        if isinstance(model, GARRegressor):
            start = time.perf_counter()
            model.fit(train_data.inputs, train_data.targets)
            trained = TrainedOperator(
                method=method_key,
                model=model,
                chip_name=train_data.chip_name,
                resolution=train_data.resolution,
                train_seconds=time.perf_counter() - start,
            )
        else:
            trainer = Trainer(model, training)
            start = time.perf_counter()
            history = trainer.fit(train_data)
            trained = TrainedOperator(
                method=method_key,
                model=model,
                chip_name=train_data.chip_name,
                resolution=train_data.resolution,
                train_seconds=time.perf_counter() - start,
                trainer=trainer,
                history=history,
            )
        if register:
            self.register_model(trained.as_loaded())
        return trained

    def evaluate(
        self,
        model: Union[TrainedOperator, LoadedOperator, str],
        dataset: ThermalDataset,
    ) -> MetricReport:
        """Physical-unit metrics of any model on a dataset.

        ``model`` may be a :class:`TrainedOperator`, a
        :class:`~repro.operators.factory.LoadedOperator`, or a path to a
        saved ``.npz``.
        """
        if isinstance(model, str):
            model = load_operator(model)
        if isinstance(model, TrainedOperator):
            return model.evaluate(dataset)
        if isinstance(model, LoadedOperator):
            return evaluate_all(model.predict(dataset.inputs), dataset.targets)
        raise TypeError(
            f"cannot evaluate a {type(model).__name__}; expected a TrainedOperator, "
            "LoadedOperator or weights path"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-friendly inventory: chips, backends, loaded models, settings."""
        return {
            "chips": self.list_chips(),
            "backends": list(BACKEND_NAMES),
            "models": self.models.describe(),
            "cells_per_layer": self.cells_per_layer,
            "factorization": self.factorization,
        }

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/stats`` and interactive inspection."""
        with self._breaker_lock:
            breakers = {name: b.stats() for name, b in sorted(self._breakers.items())}
        with self._reliability_lock:
            fallbacks = self._fallbacks
            rejections = self._breaker_rejections
        with self._dispatch_lock:
            dispatch = {
                "plane_batches": self._plane_batches,
                "split_batches": self._split_batches,
                "adaptive_splits": self._adaptive_splits,
                "latency_ewma_keys": len(self._latency_ewma),
            }
        return {
            "result_cache": self.result_cache.stats(),
            "pools": {name: pool.stats() for name, pool in self._pools.items()},
            "models": len(self.models),
            "custom_chips": sorted(self._chips),
            "plane": self.plane.stats() if self.plane is not None else None,
            "dispatch": dispatch,
            "reliability": {
                "breakers": breakers,
                "open_breakers": self.open_breakers(),
                "fallbacks": fallbacks,
                "breaker_rejections": rejections,
                "fallback_chain": {
                    name: list(chain) for name, chain in self.fallback_chain.items()
                },
                "faults": self.faults.stats() if self.faults is not None else None,
            },
        }


# ----------------------------------------------------------------------
# Process-wide default session (convenience for the evaluation harness and
# quick interactive use; long-lived services build their own).
# ----------------------------------------------------------------------
_DEFAULT_SESSION: Optional[ThermalSession] = None


def get_session() -> ThermalSession:
    """The lazily created process-wide default :class:`ThermalSession`."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = ThermalSession()
    return _DEFAULT_SESSION
