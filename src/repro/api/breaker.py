"""Per-backend circuit breakers for graceful degradation.

A backend that failed five times in a row will, with high probability, fail
the sixth time too — and some failure modes (a solver stuck in a pathological
factorisation, a dead accelerator) make that sixth attempt *expensive*.  The
classic answer is a circuit breaker: after ``failure_threshold`` consecutive
failures the breaker **opens** and the session stops sending work to that
backend; after ``cooldown_s`` it lets exactly one probe through
(**half-open**); a successful probe **closes** the breaker again, a failed
one re-opens it for another cooldown.

:class:`~repro.api.session.ThermalSession` keeps one
:class:`CircuitBreaker` per backend name and consults it in ``solve_batch``
— combined with the opt-in fallback chain this turns "backend down" into a
provenance-stamped degraded answer instead of an error on every request.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional


class CircuitOpenError(RuntimeError):
    """A backend's circuit breaker is open and no fallback could answer.

    The request was refused *without* attempting the solve; the server maps
    this to HTTP 503 so clients can tell "backend resting" from a genuine
    solver error.
    """


class CircuitBreaker:
    """One backend's failure gate (closed → open → half-open → closed).

    Thread-safe; time is read through an injectable ``clock`` (monotonic
    seconds) so tests can drive the cooldown without sleeping.

    ``listener`` (also assignable after construction) is called as
    ``listener(old_state, new_state, consecutive_failures)`` whenever a
    verdict actually changes the state — the session uses it to publish
    :class:`~repro.obs.events.BreakerTransition` telemetry.  It is invoked
    *outside* the breaker lock, so a listener may freely call back into
    :meth:`state` / :meth:`stats`.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        listener: Optional[Callable[[str, str, int], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.listener = listener
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._failures = 0
        self._successes = 0
        self._opened_count = 0
        self._opened_at: float = 0.0
        self._open = False
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half_open``."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if not self._open:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """Whether one request may proceed against this backend now.

        Closed: always.  Open: never, until the cooldown elapses.
        Half-open: exactly one caller gets ``True`` (the probe); everybody
        else keeps being refused until that probe reports back.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half_open" and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """Report a successful solve: closes the breaker, resets the streak."""
        with self._lock:
            old_state = self._state_locked()
            self._successes += 1
            self._consecutive_failures = 0
            self._open = False
            self._probe_in_flight = False
            new_state = "closed"
        self._notify(old_state, new_state, 0)

    def release_probe(self) -> None:
        """Abandon an in-flight half-open probe without a verdict.

        Used when the probe never actually exercised the backend (e.g. the
        request's deadline expired first): the breaker stays open and the
        next caller after the cooldown gets to probe instead.
        """
        with self._lock:
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """Report a failed solve; may open (or re-open) the breaker."""
        with self._lock:
            old_state = self._state_locked()
            self._failures += 1
            self._consecutive_failures += 1
            if self._probe_in_flight:
                # The half-open probe failed: back to a full cooldown.
                self._probe_in_flight = False
                self._open = True
                self._opened_at = self._clock()
            elif not self._open and self._consecutive_failures >= self.failure_threshold:
                self._open = True
                self._opened_count += 1
                self._opened_at = self._clock()
            new_state = self._state_locked()
            streak = self._consecutive_failures
        self._notify(old_state, new_state, streak)

    def _notify(self, old_state: str, new_state: str, streak: int) -> None:
        """Invoke the listener (outside the lock) on an actual state change."""
        if self.listener is not None and new_state != old_state:
            self.listener(old_state, new_state, streak)

    def stats(self) -> Dict[str, Any]:
        """Counters and state for ``session.stats()`` / ``/stats``."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "failures": self._failures,
                "successes": self._successes,
                "opened": self._opened_count,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
            }
