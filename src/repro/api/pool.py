"""Shared caching primitives of the thermal API.

:class:`LRUPool` keeps expensive per-key resources (prepared solver
backends: geometry + assembled matrix + sparse LU, factorised compact
networks) resident with LRU eviction.  :class:`ResultCache` memoises whole
:class:`~repro.api.solution.ThermalSolution` answers keyed by the query that
produced them, bounded three ways: entry count, total payload bytes and an
optional per-entry time-to-live.  Both are thread-safe and expose
hit/miss/eviction counters that feed the service ``/stats`` endpoint and
:meth:`ThermalSession.stats`.

Historically ``LRUPool`` lived in :mod:`repro.serving.backends`; it moved
here when the session facade took ownership of the cross-cutting state, and
the serving module re-exports it for compatibility.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

#: Default number of prepared solvers kept resident per backend pool.
DEFAULT_POOL_SIZE = 8

#: Default number of memoised answers in a session result cache.
DEFAULT_RESULT_CACHE_SIZE = 1024

#: Default byte budget of a session result cache.  Summary-only answers are
#: a few hundred bytes, but answers carrying per-layer maps at high
#: resolutions reach megabytes each, so the cache is bounded by payload size
#: as well as entry count.
DEFAULT_RESULT_CACHE_BYTES = 128 * 1024 * 1024


class LRUPool:
    """A small thread-safe LRU cache of expensive per-key resources.

    Used for prepared solver backends (geometry + assembled matrix + sparse
    LU) and HotSpot networks.  ``get`` builds missing entries with the
    supplied factory and evicts the least-recently-used entry beyond
    ``capacity``.  Hit/miss/eviction counters feed the service ``/stats``
    endpoint.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_SIZE):
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, build: Callable[[], Any]):
        """The entry for ``key``, building it with ``build`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
        # Build outside the lock: factorising a big grid can take hundreds of
        # milliseconds and must not stall readers of other keys.
        entry = build()
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def discard_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose key matches; returns how many were dropped.

        Used to invalidate stale resources, e.g. when a chip design is
        re-registered under an existing name.
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[Any]:
        """The currently resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Occupancy and hit/miss/eviction counters for ``/stats``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class _CacheEntry(NamedTuple):
    value: Any
    size_bytes: int
    stored_at: float


class ResultCache:
    """Thread-safe memo of fully computed thermal answers.

    Keys are built by the session from ``(chip, resolution, backend,
    power-map hash, detail flags)``; a repeated query costs one dictionary
    lookup instead of a back-substitution or a forward pass.  Lookups and
    insertions are explicit (unlike :class:`LRUPool` there is no build
    callback) because batch solves want to collect all misses first and
    answer them with one batched backend call.

    Three bounds apply, each with its own eviction counter:

    * ``capacity`` — entry count, LRU eviction (``evictions_count``),
    * ``max_bytes`` — total payload bytes, LRU eviction (``evictions_bytes``),
    * ``ttl_s`` — optional per-entry time-to-live; entries older than it are
      dropped on access or during insertion sweeps (``expirations``).  A TTL
      bounds staleness for deployments whose upstream state (chip registry,
      reloaded models) changes outside the session's invalidation hooks.

    ``clock`` is injectable (monotonic seconds) so TTL behaviour is testable
    without sleeping.

    ``eviction_listener`` (assignable after construction) is called as
    ``listener(cause, key)`` — cause one of ``"count"`` / ``"bytes"`` /
    ``"ttl"`` — for every entry dropped by a bound, *outside* the cache
    lock; the session uses it to publish
    :class:`~repro.obs.events.CacheEviction` telemetry.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RESULT_CACHE_SIZE,
        max_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
        ttl_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        if max_bytes < 1:
            raise ValueError("result cache byte budget must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("result cache ttl_s must be positive (or None)")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._clock = clock or time.monotonic
        self._entries: "OrderedDict[Any, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions_count = 0
        self.evictions_bytes = 0
        self.expirations = 0
        #: Optional ``listener(cause, key)`` invoked outside the lock for
        #: every bound-driven eviction (not for explicit discard/clear).
        self.eviction_listener: Optional[Callable[[str, Any], None]] = None

    @property
    def evictions(self) -> int:
        """Total LRU evictions (count- plus byte-bound; TTL expiries apart)."""
        return self.evictions_count + self.evictions_bytes

    def _expired(self, entry: _CacheEntry, now: float) -> bool:
        return self.ttl_s is not None and now - entry.stored_at >= self.ttl_s

    def _drop(self, key) -> _CacheEntry:
        entry = self._entries.pop(key)
        self.total_bytes -= entry.size_bytes
        return entry

    def _notify_evictions(self, evicted: List[Tuple[str, Any]]) -> None:
        """Invoke the eviction listener for each (cause, key), outside the lock."""
        listener = self.eviction_listener
        if listener is None:
            return
        for cause, key in evicted:
            listener(cause, key)

    def get(self, key) -> Optional[Any]:
        """The cached entry for ``key``, counting a hit or a miss.

        An entry past its TTL counts as a miss (plus an expiration) and is
        dropped, so the caller recomputes and re-inserts a fresh answer.
        """
        expired_key = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry, self._clock()):
                self._drop(key)
                self.expirations += 1
                expired_key = key
                entry = None
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                value: Optional[Any] = entry.value
            else:
                self.misses += 1
                value = None
        if expired_key is not None:
            self._notify_evictions([("ttl", expired_key)])
        return value

    def put(self, key, value, size_bytes: int = 0) -> None:
        """Insert ``value``; ``size_bytes`` is its approximate payload size."""
        size_bytes = max(int(size_bytes), 0)
        if size_bytes > self.max_bytes:
            return  # one oversized answer must not wipe the whole cache
        now = self._clock()
        evicted: List[Tuple[str, Any]] = []
        with self._lock:
            if self.ttl_s is not None and (
                len(self._entries) >= self.capacity
                or self.total_bytes + size_bytes > self.max_bytes
            ):
                # Sweep expired entries only under bound pressure: it keeps
                # dead entries from counting as LRU evictions (the counters
                # stay diagnostic) without paying an O(capacity) scan on
                # every insert of the hot serving path.  Entries that expire
                # without pressure are reaped lazily by get().
                stale = [k for k, e in self._entries.items() if self._expired(e, now)]
                for k in stale:
                    self._drop(k)
                    self.expirations += 1
                    evicted.append(("ttl", k))
            if key in self._entries:
                self._drop(key)
            self._entries[key] = _CacheEntry(value, size_bytes, now)
            self.total_bytes += size_bytes
            while len(self._entries) > self.capacity:
                dropped_key, dropped = self._entries.popitem(last=False)
                self.total_bytes -= dropped.size_bytes
                self.evictions_count += 1
                evicted.append(("count", dropped_key))
            while self.total_bytes > self.max_bytes:
                dropped_key, dropped = self._entries.popitem(last=False)
                self.total_bytes -= dropped.size_bytes
                self.evictions_bytes += 1
                evicted.append(("bytes", dropped_key))
        self._notify_evictions(evicted)

    def discard_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose key matches; returns how many were dropped."""
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                self._drop(key)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Occupancy, bounds and per-cause eviction counters for ``/stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "evictions_count": self.evictions_count,
                "evictions_bytes": self.evictions_bytes,
                "expirations": self.expirations,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
