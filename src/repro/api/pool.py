"""Shared caching primitives of the thermal API.

:class:`LRUPool` keeps expensive per-key resources (prepared solver
backends: geometry + assembled matrix + sparse LU, factorised compact
networks) resident with LRU eviction.  :class:`ResultCache` memoises whole
:class:`~repro.api.solution.ThermalSolution` answers keyed by the query that
produced them.  Both are thread-safe and expose hit/miss counters that feed
the service ``/stats`` endpoint and :meth:`ThermalSession.stats`.

Historically ``LRUPool`` lived in :mod:`repro.serving.backends`; it moved
here when the session facade took ownership of the cross-cutting state, and
the serving module re-exports it for compatibility.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

#: Default number of prepared solvers kept resident per backend pool.
DEFAULT_POOL_SIZE = 8

#: Default number of memoised answers in a session result cache.
DEFAULT_RESULT_CACHE_SIZE = 1024

#: Default byte budget of a session result cache.  Summary-only answers are
#: a few hundred bytes, but answers carrying per-layer maps at high
#: resolutions reach megabytes each, so the cache is bounded by payload size
#: as well as entry count.
DEFAULT_RESULT_CACHE_BYTES = 128 * 1024 * 1024


class LRUPool:
    """A small thread-safe LRU cache of expensive per-key resources.

    Used for prepared solver backends (geometry + assembled matrix + sparse
    LU) and HotSpot networks.  ``get`` builds missing entries with the
    supplied factory and evicts the least-recently-used entry beyond
    ``capacity``.  Hit/miss/eviction counters feed the service ``/stats``
    endpoint.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_SIZE):
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, build: Callable[[], Any]):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
        # Build outside the lock: factorising a big grid can take hundreds of
        # milliseconds and must not stall readers of other keys.
        entry = build()
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def discard_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose key matches; returns how many were dropped.

        Used to invalidate stale resources, e.g. when a chip design is
        re-registered under an existing name.
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[Any]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class ResultCache:
    """Thread-safe LRU memo of fully computed thermal answers.

    Keys are built by the session from ``(chip, resolution, backend,
    power-map hash, detail flags)``; a repeated query costs one dictionary
    lookup instead of a back-substitution or a forward pass.  Lookups and
    insertions are explicit (unlike :class:`LRUPool` there is no build
    callback) because batch solves want to collect all misses first and
    answer them with one batched backend call.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_RESULT_CACHE_SIZE,
        max_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
    ):
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        if max_bytes < 1:
            raise ValueError("result cache byte budget must be >= 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Any, tuple]" = OrderedDict()  # key -> (value, bytes)
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key) -> Optional[Any]:
        """The cached entry for ``key``, counting a hit or a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return None

    def put(self, key, value, size_bytes: int = 0) -> None:
        """Insert ``value``; ``size_bytes`` is its approximate payload size."""
        size_bytes = max(int(size_bytes), 0)
        if size_bytes > self.max_bytes:
            return  # one oversized answer must not wipe the whole cache
        with self._lock:
            if key in self._entries:
                self.total_bytes -= self._entries.pop(key)[1]
            self._entries[key] = (value, size_bytes)
            self.total_bytes += size_bytes
            while len(self._entries) > self.capacity or self.total_bytes > self.max_bytes:
                _, (_, dropped_bytes) = self._entries.popitem(last=False)
                self.total_bytes -= dropped_bytes
                self.evictions += 1

    def discard_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose key matches; returns how many were dropped."""
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                self.total_bytes -= self._entries.pop(key)[1]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
