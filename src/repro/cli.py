"""Command-line interface for the SAU-FNO reproduction.

A thin layer over :class:`repro.api.ThermalSession` — every subcommand maps
onto one session call, so the CLI, the HTTP service, the evaluation harness
and the Python API all answer through the same backends, pools and caches.

Eight sub-commands cover the everyday workflow without writing Python:

* ``repro-thermal chips`` — list the benchmark chips and their structure.
* ``repro-thermal generate`` — create a dataset with the FVM solver.
* ``repro-thermal train`` — train an operator model on a generated dataset
  and save its weights.
* ``repro-thermal solve`` — answer one steady-state query through any
  backend (exact ``fvm``, compact ``hotspot``, time-integrating
  ``transient``, or a trained ``operator`` surrogate).
* ``repro-thermal serve`` — run the thermal inference service: a JSON HTTP
  API answering concurrent power-map queries through micro-batched session
  backends.
* ``repro-thermal route`` — run the fleet router in front of N ``serve``
  replicas: health-checked membership, shard-aware placement, draining
  and warm-up re-admission (see ``docs/CLUSTER.md``).
* ``repro-thermal report`` — run every experiment harness and write a
  markdown report of the regenerated tables; with ``--serve-history URL``
  it instead dumps a running service's rolled-up telemetry time series as
  JSON or CSV.
* ``repro-thermal watch`` — live terminal dashboard over a running
  service's ``/stats``, ``/healthz`` and ``/events`` surfaces.

Bad user input (malformed power JSON, unknown blocks, missing or mismatched
model/dataset files) exits with status 2 and a one-line ``error:`` message
on stderr; tracebacks are reserved for actual bugs.

Examples
--------
::

    repro-thermal chips
    repro-thermal generate --chip chip1 --resolution 32 --samples 64 --output chip1_32.npz
    repro-thermal train --dataset chip1_32.npz --model sau_fno --epochs 20 --output sau_fno.npz
    repro-thermal solve --chip chip2 --total-power 80 --resolution 40
    repro-thermal solve --chip chip1 --backend operator --model sau_fno.npz --total-power 60
    repro-thermal serve --port 8471 --model sau_fno.npz
    repro-thermal route --replica http://127.0.0.1:8471 --replica http://127.0.0.1:8472
    repro-thermal generate --chip chip1 --samples 64 --fleet http://127.0.0.1:8470 --output d.npz
    repro-thermal report --output repro_report.md --scale tiny
    repro-thermal watch http://127.0.0.1:8471
    repro-thermal report --serve-history http://127.0.0.1:8471 --format csv
"""

from __future__ import annotations

import argparse
import sys
import zipfile
from typing import List, Optional

import numpy as np

from repro.api.backends import BACKEND_NAMES
from repro.api.session import ThermalSession
from repro.chip.designs import get_chip, list_chips
from repro.data.dataset import ThermalDataset
from repro.data.generation import DEFAULT_BATCH_SIZE
from repro.data.power import error_message, parse_power_spec
from repro.runtime.plane import PLANE_KINDS
from repro.solvers.factor import FACTORIZATION_CHOICES, resolve_factorization
from repro.evaluation.reporting import ascii_heatmap, format_table
from repro.operators.factory import OPERATOR_REGISTRY
from repro.training.trainer import TrainingConfig


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-thermal",
        description="SAU-FNO 3D-IC thermal simulation toolkit (DAC 2025 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("chips", help="list the built-in benchmark chips")

    generate = subparsers.add_parser("generate", help="generate a dataset with the FVM solver")
    generate.add_argument("--chip", default="chip1", choices=list_chips())
    generate.add_argument("--resolution", type=int, default=32)
    generate.add_argument("--samples", type=int, default=64)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
                          help="power cases solved per batched factorization pass")
    generate.add_argument("--exec", dest="exec_plane", default="serial",
                          choices=list(PLANE_KINDS),
                          help="execution plane solving the batches: 'serial' "
                               "(inline, the default), 'threads', or 'processes' "
                               "(worker processes with warm per-process "
                               "factorizations — true multi-core generation)")
    generate.add_argument("--exec-workers", type=int, default=None, metavar="N",
                          help="workers of the execution plane (default: the "
                               "host CPU count; ignored for --exec serial)")
    generate.add_argument("--fleet", default=None, metavar="ROUTER_URL",
                          help="generate through a fleet router instead of "
                               "locally: the dataset's batches are sharded "
                               "across the router's healthy replicas and the "
                               "merged result is bitwise-identical to a "
                               "single-host run (ignores --exec)")
    generate.add_argument("--shards", type=int, default=None, metavar="N",
                          help="with --fleet: number of shards (default: one "
                               "per healthy replica)")
    generate.add_argument("--factorization", default="auto",
                          choices=list(FACTORIZATION_CHOICES),
                          help="SPD kernel factorizing the conduction system: "
                               "'auto' (CHOLMOD Cholesky when installed, "
                               "sparse LU otherwise), 'cholesky' (CHOLMOD, "
                               "falling back to the identical LU call when "
                               "absent) or 'lu'")
    generate.add_argument("--output", required=True, help="output .npz path")

    train = subparsers.add_parser("train", help="train an operator on a generated dataset")
    train.add_argument("--dataset", required=True, help="dataset .npz produced by 'generate'")
    train.add_argument("--model", default="sau_fno", choices=sorted(OPERATOR_REGISTRY))
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--width", type=int, default=16)
    train.add_argument("--modes", type=int, default=8)
    train.add_argument("--train-fraction", type=float, default=0.8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", help="where to store the trained weights (.npz)")

    solve = subparsers.add_parser(
        "solve", help="answer one steady-state query through any backend"
    )
    solve.add_argument("--chip", default="chip1", choices=list_chips())
    solve.add_argument("--resolution", type=int, default=40)
    solve.add_argument("--backend", default="fvm", choices=BACKEND_NAMES,
                       help="engine answering the query (default: exact fvm)")
    solve.add_argument("--model", action="append", default=[], dest="models",
                       metavar="WEIGHTS.npz",
                       help="trained operator weights (repeatable); required for "
                            "--backend operator")
    solve.add_argument("--total-power", type=float, default=None,
                       help="uniformly distributed total power in watts")
    solve.add_argument("--powers", type=str, default=None,
                       help="JSON mapping of 'layer/block' to watts")
    solve.add_argument("--factorization", default="auto",
                       choices=list(FACTORIZATION_CHOICES),
                       help="SPD kernel for the field solvers (see 'generate')")
    solve.add_argument("--heatmap", action="store_true", help="print ASCII heat maps per layer")

    serve = subparsers.add_parser(
        "serve", help="run the thermal inference HTTP service (JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8471,
                       help="TCP port (0 picks a free port)")
    serve.add_argument("--model", action="append", default=[], dest="models",
                       metavar="WEIGHTS.npz",
                       help="trained operator weights (repeatable); enables the "
                            "'operator' backend for the chip/resolution each "
                            "model was trained on")
    serve.add_argument("--workers", type=int, default=1,
                       help="dispatcher worker threads; group keys are sharded "
                            "across them (1 = the classic single dispatcher)")
    serve.add_argument("--exec", dest="exec_plane", default="serial",
                       choices=list(PLANE_KINDS),
                       help="where each group's batched solve runs: 'serial' "
                            "(inline in the dispatcher thread, the default), "
                            "'threads', or 'processes' (worker processes with "
                            "warm per-process factorizations — multi-core "
                            "serving on multi-core hosts)")
    serve.add_argument("--exec-workers", type=int, default=None, metavar="N",
                       help="workers of the execution plane (default: the host "
                            "CPU count; ignored for --exec serial)")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission bound on queued requests; beyond it /solve "
                            "answers 429 immediately (default: unbounded)")
    serve.add_argument("--max-batch-size", type=int, default=32,
                       help="requests dispatched per batched backend call")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="micro-batching window in milliseconds")
    serve.add_argument("--refine-threshold", type=float, default=None, metavar="K",
                       help="surrogate answers predicting a peak temperature at or "
                            "above this value are re-solved with the FVM backend")
    serve.add_argument("--solver-cache-size", type=int, default=8,
                       help="prepared factorisations kept per backend (LRU)")
    serve.add_argument("--result-cache-size", type=int, default=1024,
                       help="memoised answers kept in the session result cache")
    serve.add_argument("--cache-ttl", type=float, default=None, metavar="SECONDS",
                       help="time-to-live of memoised answers (default: no expiry)")
    serve.add_argument("--cache-max-mb", type=float, default=128.0, metavar="MB",
                       help="byte budget of the result cache in megabytes")
    serve.add_argument("--fallback", action="store_true",
                       help="degrade gracefully: when a backend fails or its "
                            "circuit breaker is open, answer from the next "
                            "backend in its fallback chain (fvm -> operator -> "
                            "hotspot), provenance-stamped 'degraded'")
    serve.add_argument("--breaker-threshold", type=int, default=5, metavar="N",
                       help="consecutive backend failures that open its circuit "
                            "breaker (default: 5)")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds an open breaker rests before letting one "
                            "probe request through (default: 30)")
    serve.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                       help="inject faults for reliability drills, e.g. "
                            "'kill-worker:0@5,fail-backend:fvm@3' (worker "
                            "directives need --exec processes); see "
                            "repro.runtime.faults.FaultPlan.parse")
    serve.add_argument("--verbose", action="store_true", help="log HTTP requests")
    serve.add_argument("--log-json", action="store_true",
                       help="structured access log: one JSON line per request "
                            "(method, path, status, latency_ms, trace_id, "
                            "backend, shed/degraded flags) on stderr; the "
                            "plain-text log stays the default")
    serve.add_argument("--sample-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="telemetry sampler period feeding /metrics/history "
                            "and the watchdog (default: 1.0)")
    serve.add_argument("--factorization", default="auto",
                       choices=list(FACTORIZATION_CHOICES),
                       help="SPD kernel for the field solvers (see 'generate')")

    route = subparsers.add_parser(
        "route", help="run the fleet router in front of N serve replicas"
    )
    route.add_argument("--replica", action="append", default=[], dest="replicas",
                       metavar="URL",
                       help="replica base URL, e.g. http://127.0.0.1:8471 "
                            "(repeatable)")
    route.add_argument("--replicas-file", default=None, metavar="PATH",
                       help="file with one replica URL per line ('#' comments "
                            "allowed); combined with any --replica flags")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=8470,
                       help="TCP port (0 picks a free port)")
    route.add_argument("--probe-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="period of the replica /healthz prober (default: 1.0)")
    route.add_argument("--failure-threshold", type=int, default=2, metavar="N",
                       help="consecutive probe failures that drain a replica "
                            "(default: 2; traffic errors drain immediately)")
    route.add_argument("--verbose", action="store_true", help="log HTTP requests")

    report = subparsers.add_parser(
        "report", help="run every experiment harness and write a markdown report"
    )
    report.add_argument("--output", default="repro_report.md")
    report.add_argument("--scale", default=None, choices=["tiny", "small", "paper"],
                        help="experiment scale (default: REPRO_BENCH_SCALE or 'tiny')")
    report.add_argument("--quiet", action="store_true")
    report.add_argument("--serve-history", default=None, metavar="URL",
                        help="instead of running experiments, fetch a running "
                             "service's /metrics/history and dump the rolled-up "
                             "time series (to --output, or stdout when --output "
                             "is left at its markdown default)")
    report.add_argument("--format", default="json", choices=["json", "csv"],
                        dest="history_format",
                        help="serialisation of --serve-history (default: json)")
    report.add_argument("--window", type=float, default=None, metavar="SECONDS",
                        help="with --serve-history: only samples from the last "
                             "SECONDS (default: everything retained)")

    watch = subparsers.add_parser(
        "watch", help="live terminal dashboard over a running thermal service"
    )
    watch.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8471")
    watch.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                       help="refresh period of the dashboard (default: 1.0)")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit (no screen "
                            "clearing; suits scripts and smoke tests)")

    return parser


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _cmd_chips(_args) -> int:
    rows = []
    for name in list_chips():
        chip = get_chip(name)
        rows.append(
            {
                "Chip": name,
                "Die (mm)": f"{chip.die_width_mm:g} x {chip.die_height_mm:g}",
                "Layers": len(chip.layers),
                "Power layers": chip.num_power_layers,
                "Blocks": len(chip.flat_block_names()),
                "Power budget (W)": f"{chip.power_budget_W[0]:g}-{chip.power_budget_W[1]:g}",
            }
        )
    print(format_table(rows, title="Built-in benchmark chips (paper Table I / Fig. 3)"))
    return 0


def _make_plane(args, faults=None):
    """Build the execution plane a subcommand asked for (None for serial).

    ``--exec serial`` maps to no plane at all: the inline code path is the
    historical single-core pipeline, bitwise-identical by construction.
    ``faults`` (a :class:`~repro.runtime.faults.FaultPlan`) arms chaos
    injection on the plane's workers.
    """
    if args.exec_plane == "serial":
        if faults is not None and faults.has_worker_faults:
            raise ValueError(
                "worker fault injection (kill-worker / drop-result) requires "
                "--exec processes"
            )
        return None
    from repro.runtime import create_plane

    if args.exec_workers is not None and args.exec_workers < 1:
        raise ValueError("--exec-workers must be >= 1")
    return create_plane(args.exec_plane, workers=args.exec_workers, faults=faults)


def _cmd_generate(args) -> int:
    if args.fleet:
        return _generate_fleet(args)
    plane = _make_plane(args)
    session = ThermalSession(plane=plane, factorization=args.factorization)
    where = f" on a {plane.kind} plane ({plane.workers} workers)" if plane is not None else ""
    print(f"generating {args.samples} cases for {args.chip} "
          f"at {args.resolution}x{args.resolution}{where} ...")
    try:
        dataset = session.generate_dataset(
            args.chip,
            resolution=args.resolution,
            num_samples=args.samples,
            seed=args.seed,
            batch_size=args.batch_size,
            verbose=True,
        )
    finally:
        if plane is not None:
            plane.close()
    dataset.save(args.output)
    print(f"wrote {args.output}: inputs {dataset.inputs.shape}, targets {dataset.targets.shape}")
    return 0


def _generate_fleet(args) -> int:
    """``generate --fleet``: shard the dataset across a router's replicas.

    The seeded case list makes sharding deterministic, so the merged
    archive is bitwise-identical to a local run (only the wall-clock
    ``solve_seconds`` metadata differs).
    """
    from repro.cluster.fleetgen import fleet_generate
    from repro.cluster.proxy import ReplicaError
    from repro.data.generation import DatasetSpec

    if args.shards is not None and args.shards < 1:
        raise ValueError("--shards must be >= 1")
    spec = DatasetSpec(
        chip_name=args.chip,
        resolution=args.resolution,
        num_samples=args.samples,
        seed=args.seed,
        factorization=args.factorization,
    )
    print(f"generating {args.samples} cases for {args.chip} "
          f"at {args.resolution}x{args.resolution} via fleet {args.fleet} ...")
    try:
        dataset = fleet_generate(
            args.fleet,
            spec,
            batch_size=args.batch_size,
            shard_count=args.shards,
            verbose=True,
        )
    except ReplicaError as error:
        raise OSError(f"fleet generation failed: {error_message(error)}")
    dataset.save(args.output)
    print(f"wrote {args.output}: inputs {dataset.inputs.shape}, targets {dataset.targets.shape}")
    return 0


def _load_dataset(path: str) -> ThermalDataset:
    try:
        return ThermalDataset.load(path)
    except FileNotFoundError:
        raise ValueError(f"dataset file '{path}' does not exist")
    except (zipfile.BadZipFile, KeyError) as error:
        raise ValueError(f"'{path}' is not a dataset archive written by 'generate': {error}")


def _cmd_train(args) -> int:
    session = ThermalSession()
    dataset = _load_dataset(args.dataset)
    split = dataset.split(args.train_fraction, rng=np.random.default_rng(args.seed))
    config = {
        "width": args.width,
        "modes1": args.modes,
        "modes2": args.modes,
        "unet_base_channels": max(args.width // 2, 4),
        "unet_levels": 2,
        "attention_dim": args.width,
    }
    trained = session.train(
        split.train,
        method=args.model,
        config=config,
        training=TrainingConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            seed=args.seed,
        ),
    )
    report = trained.evaluate(split.test)
    if args.output:
        if trained.servable:
            trained.save(args.output)
            print(f"saved model weights to {args.output} "
                  f"(servable: {dataset.chip_name}@{dataset.resolution})")
        else:
            print(f"note: '{args.model}' has no persistable weights; skipping --output",
                  file=sys.stderr)
    print(format_table(
        [{"Model": args.model, **{k: round(v, 3) for k, v in report.as_dict().items()}}],
        title=f"Held-out metrics on {dataset.chip_name} ({dataset.resolution}x{dataset.resolution})",
    ))
    return 0


def _cmd_solve(args) -> int:
    session = ThermalSession(factorization=args.factorization)
    chip = session.get_chip(args.chip)
    try:
        assignment = parse_power_spec(
            chip, powers_json=args.powers, total_power_W=args.total_power
        )
    except KeyError as error:  # unknown blocks are user input, not bugs
        raise ValueError(error_message(error))
    if args.backend == "operator" and not args.models:
        raise ValueError(
            "--backend operator needs at least one --model WEIGHTS.npz "
            "(trained for this chip and resolution)"
        )
    for path in args.models:
        _load_model(session, path)
    try:
        solution = session.solve(
            chip,
            assignment,
            resolution=args.resolution,
            backend=args.backend,
            include_maps=args.heatmap,
        )
    except KeyError as error:  # no model for this chip/resolution
        raise ValueError(error_message(error))
    print(format_table(
        [
            {
                "Chip": chip.name,
                "Backend": solution.backend,
                "Total power (W)": round(solution.total_power_W, 2),
                "Max (K)": round(solution.max_K, 3),
                "Min (K)": round(solution.min_K, 3),
                "Mean (K)": round(solution.mean_K, 3),
                "Solve time (s)": round(solution.solve_seconds, 3),
            }
        ],
        title=f"Steady-state solution ({solution.backend} backend)",
    ))
    if args.heatmap:
        for layer_name in chip.power_layer_names:
            print(f"\n{layer_name}:")
            print(ascii_heatmap(solution.layer_map(layer_name), width=48))
    return 0


def _load_model(session: ThermalSession, path: str) -> None:
    """Load operator weights with CLI-grade error context."""
    try:
        session.load_model(path)
    except FileNotFoundError:
        raise ValueError(f"model file '{path}' does not exist")
    except ValueError:
        raise  # already carries a readable message (missing config/provenance)
    except Exception as error:  # noqa: BLE001 — bad weight files fail many ways
        raise ValueError(f"cannot load operator model '{path}': {error_message(error)}")


def _cmd_serve(args) -> int:
    from repro.serving.backends import build_backends
    from repro.serving.engine import MicroBatchEngine
    from repro.serving.server import ThermalServer

    if args.workers < 1:
        raise ValueError("--workers must be >= 1")
    if args.cache_max_mb <= 0:
        raise ValueError("--cache-max-mb must be positive")
    if args.breaker_threshold < 1:
        raise ValueError("--breaker-threshold must be >= 1")
    if args.breaker_cooldown < 0:
        raise ValueError("--breaker-cooldown must be >= 0")
    if args.sample_interval <= 0:
        raise ValueError("--sample-interval must be positive")
    faults = None
    if args.chaos:
        from repro.runtime.faults import FaultPlan

        faults = FaultPlan.parse(args.chaos)  # ValueError -> exit 2 with message
    plane = _make_plane(args, faults=faults)
    session = ThermalSession(
        pool_size=args.solver_cache_size,
        result_cache_size=args.result_cache_size,
        result_cache_max_bytes=int(args.cache_max_mb * 1024 * 1024),
        result_cache_ttl_s=args.cache_ttl,
        plane=plane,
        fallback=args.fallback,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        faults=faults,
        factorization=args.factorization,
    )
    for path in args.models:
        _load_model(session, path)
    backends = build_backends(session=session)
    engine = MicroBatchEngine(
        backends,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.batch_wait_ms,
        refine_threshold_K=args.refine_threshold,
        workers=args.workers,
        max_queue=args.max_queue,
    )
    server = ThermalServer(
        engine, host=args.host, port=args.port, verbose=args.verbose, session=session,
        log_json=args.log_json, sample_interval_s=args.sample_interval,
    )
    print(f"thermal inference service listening on {server.url}", flush=True)
    print(f"  backends: {', '.join(sorted(backends))}"
          + (f" ({len(args.models)} operator model(s) loaded)" if args.models else ""))
    print(f"  workers: {args.workers}"
          + (f" · max queue: {args.max_queue}" if args.max_queue else "")
          + (f" · exec: {plane.kind} ({plane.workers} workers)" if plane is not None else ""))
    print(f"  solver kernel: {resolve_factorization(args.factorization)} "
          f"(requested: {args.factorization})")
    if args.fallback or faults is not None:
        print("  reliability: "
              + ("fallback on" if args.fallback else "fallback off")
              + f" · breaker threshold {args.breaker_threshold}"
              + f" · cooldown {args.breaker_cooldown:g}s"
              + (f" · CHAOS ARMED: {faults.spec}" if faults is not None else ""),
              flush=True)
    print("  endpoints: POST /solve /solve_transient · GET /chips /models /healthz "
          "/stats /events /metrics", flush=True)
    print("  streaming: POST /solve?mode=speculative (surrogate frame + exact frame) "
          "· POST /solve_transient with Accept: text/event-stream", flush=True)
    print("  example: curl -s -X POST "
          f"{server.url}/solve -d '{{\"chip\": \"chip1\", \"total_power\": 60}}'")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        # Close the listening socket; lingering keep-alive handler threads
        # are daemons and die with the process.  Interpreter finalisation can
        # race those daemons' stdio teardown (observed as exit status 120),
        # so flush explicitly and exit hard: for a service process SIGINT ->
        # clean "shutting down" -> exit 0 must be deterministic.  The plane's
        # worker processes must be stopped *before* os._exit, which skips the
        # atexit hooks that would otherwise reap them.
        server.close()
        if plane is not None:
            plane.close()
        sys.stdout.flush()
        sys.stderr.flush()
        import os
        os._exit(0)
    finally:
        if plane is not None:
            plane.close()
    return 0


def _read_replicas_file(path: str) -> List[str]:
    """Read one replica URL per line; blank lines and ``#`` comments skipped."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        raise ValueError(f"replicas file '{path}' does not exist")
    urls = []
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            urls.append(stripped)
    return urls


def _cmd_route(args) -> int:
    from repro.cluster.router import FleetRouter

    replicas = list(args.replicas)
    if args.replicas_file:
        replicas.extend(_read_replicas_file(args.replicas_file))
    if not replicas:
        raise ValueError("no replicas: pass --replica URL (repeatable) "
                         "and/or --replicas-file PATH")
    if args.probe_interval <= 0:
        raise ValueError("--probe-interval must be positive")
    if args.failure_threshold < 1:
        raise ValueError("--failure-threshold must be >= 1")
    router = FleetRouter(
        replicas,
        host=args.host,
        port=args.port,
        probe_interval_s=args.probe_interval,
        failure_threshold=args.failure_threshold,
        verbose=args.verbose,
    )
    print(f"fleet router listening on {router.url}", flush=True)
    print(f"  replicas: {', '.join(replicas)}")
    print(f"  probing /healthz every {args.probe_interval:g}s · "
          f"drain after {args.failure_threshold} failures · "
          "warm-up before re-admission", flush=True)
    print("  endpoints: POST /solve /solve_transient /warm_up /generate · "
          "GET /chips /models /healthz /stats /events /metrics", flush=True)
    print("  streaming: speculative solves and streamed transients are proxied "
          "frame-by-frame to their owning replica", flush=True)
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        # Mirror _cmd_serve: close deterministically, then exit hard so
        # lingering keep-alive daemon threads cannot corrupt the exit status.
        router.close()
        sys.stdout.flush()
        sys.stderr.flush()
        import os
        os._exit(0)
    finally:
        router.close()
    return 0


def _cmd_report(args) -> int:
    if args.serve_history:
        return _report_serve_history(args)
    from repro.evaluation.config import get_scale
    from repro.evaluation.report import generate_report

    scale = get_scale(args.scale) if args.scale else None
    generate_report(args.output, scale=scale, verbose=not args.quiet)
    print(f"wrote {args.output}")
    return 0


def _report_serve_history(args) -> int:
    """Dump a running service's ``/metrics/history`` as JSON or CSV.

    The telemetry time series is the service's in-memory ring buffer of
    sampler snapshots plus a rolled-up summary; JSON keeps the payload
    verbatim, CSV tabulates just the samples (``ts`` first, then every
    sampled field, blank cells for fields absent from a sample).  Output
    goes to ``--output``, or to stdout when ``--output`` is still the
    markdown default (which would make no sense for a telemetry dump).
    """
    import csv
    import io
    import json
    import urllib.error
    import urllib.request

    url = args.serve_history.rstrip("/") + "/metrics/history"
    if args.window is not None:
        if args.window <= 0:
            raise ValueError("--window must be positive")
        url += f"?window_s={args.window:g}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.URLError as error:
        raise OSError(f"cannot reach {url}: {error.reason}") from error
    if args.history_format == "json":
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        fields = ["ts"] + [f for f in payload.get("fields", []) if f != "ts"]
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fields, restval="")
        writer.writeheader()
        for sample in payload.get("samples", []):
            writer.writerow({k: v for k, v in sample.items() if k in set(fields)})
        text = buffer.getvalue()
    if args.output == "repro_report.md":  # the markdown default: use stdout
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(payload.get('samples', []))} samples)")
    return 0


def _cmd_watch(args) -> int:
    from repro.obs.watch import run_watch

    if args.interval <= 0:
        raise ValueError("--interval must be positive")
    return run_watch(args.url, interval_s=args.interval, once=args.once)


_COMMANDS = {
    "chips": _cmd_chips,
    "generate": _cmd_generate,
    "train": _cmd_train,
    "solve": _cmd_solve,
    "serve": _cmd_serve,
    "route": _cmd_route,
    "report": _cmd_report,
    "watch": _cmd_watch,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Every subcommand reports bad user input (unknown blocks, malformed
    power JSON, missing model/dataset files, chip/model mismatches) as a
    one-line ``error:`` message on stderr with exit status 2.  The
    classification is by exception type: validation raises ``ValueError`` /
    ``OSError`` (subcommands convert boundary ``KeyError``\\ s), so those
    exit 2, and any other exception type is an internal bug and keeps its
    traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, OSError) as error:
        # User-input failures: subcommands convert validation KeyErrors to
        # ValueError at the input boundary, so any KeyError reaching here is
        # an internal bug and gets its traceback.  LinAlgError subclasses
        # ValueError but is a solver failure, not bad input — re-raise.
        if isinstance(error, np.linalg.LinAlgError):
            raise
        print(f"error: {error_message(error)}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
