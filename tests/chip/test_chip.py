"""Tests for materials, floorplans, layers, cooling and the chip stack."""

import numpy as np
import pytest

from repro.chip import (
    COPPER,
    CoolingSpec,
    Floorplan,
    FloorplanBlock,
    HeatSink,
    HeatSpreader,
    Layer,
    Material,
    MaterialLibrary,
    SILICON,
    TIM,
    TSVArray,
    tsv_effective_material,
)
from repro.chip.cooling import spreading_resistance
from repro.chip.floorplan import grid_floorplan
from repro.chip.stack import ChipStack


class TestMaterials:
    def test_table1_values(self):
        assert SILICON.conductivity == 100.0
        assert SILICON.volumetric_heat_capacity == 1.75e6
        assert TIM.conductivity == 4.0
        assert COPPER.conductivity == 400.0

    def test_invalid_material_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity=-1.0, volumetric_heat_capacity=1.0)

    def test_diffusivity(self):
        assert SILICON.diffusivity() == pytest.approx(100.0 / 1.75e6)

    def test_library_lookup(self):
        library = MaterialLibrary()
        assert library.get("silicon_device_layer").conductivity == 100.0
        assert "air" in library
        with pytest.raises(KeyError):
            library.get("unobtainium")

    def test_tsv_effective_material_bounds(self):
        low_k = Material("low", 10.0, 1e6)
        composite = tsv_effective_material(low_k, SILICON, 0.01, 0.02)
        assert 10.0 < composite.conductivity < 100.0

    def test_tsv_diameter_cannot_exceed_pitch(self):
        with pytest.raises(ValueError):
            tsv_effective_material(SILICON, COPPER, 0.03, 0.01)


class TestFloorplan:
    def test_block_geometry_helpers(self):
        block = FloorplanBlock("core", 1.0, 2.0, 3.0, 4.0)
        assert block.x2 == 4.0 and block.y2 == 6.0
        assert block.area_mm2 == 12.0
        assert block.contains_point(2.0, 3.0)

    def test_overlap_detection(self):
        first = FloorplanBlock("a", 0, 0, 2, 2)
        second = FloorplanBlock("b", 1, 1, 2, 2)
        third = FloorplanBlock("c", 2, 0, 2, 2)
        assert first.overlaps(second)
        assert not first.overlaps(third)

    def test_floorplan_rejects_overlaps_and_out_of_bounds(self):
        with pytest.raises(ValueError):
            Floorplan(4, 4, [FloorplanBlock("a", 0, 0, 3, 3), FloorplanBlock("b", 2, 2, 2, 2)])
        with pytest.raises(ValueError):
            Floorplan(4, 4, [FloorplanBlock("a", 0, 0, 5, 2)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Floorplan(4, 4, [FloorplanBlock("a", 0, 0, 2, 2), FloorplanBlock("a", 2, 2, 2, 2)])

    def test_grid_floorplan_full_coverage(self):
        plan = grid_floorplan(10, 10, 2, 5)
        assert len(plan.blocks) == 10
        assert plan.coverage_fraction() == pytest.approx(1.0)

    def test_block_index_map_labels(self):
        plan = grid_floorplan(8, 8, 2, 2)
        labels = plan.block_index_map(8, 8)
        assert labels.shape == (8, 8)
        assert set(np.unique(labels)) == {0, 1, 2, 3}

    def test_power_density_map_conserves_power(self):
        plan = grid_floorplan(10, 10, 2, 2)
        powers = {name: 5.0 for name in plan.block_names}
        density = plan.power_density_map(powers, 20, 20)
        cell_area = (10e-3 / 20) ** 2
        assert density.sum() * cell_area == pytest.approx(20.0, rel=1e-6)

    def test_power_density_unknown_block_rejected(self):
        plan = grid_floorplan(10, 10, 2, 2)
        with pytest.raises(KeyError):
            plan.power_density_map({"nope": 1.0}, 8, 8)

    def test_negative_power_rejected(self):
        plan = grid_floorplan(10, 10, 1, 1)
        with pytest.raises(ValueError):
            plan.power_density_map({plan.block_names[0]: -1.0}, 8, 8)

    def test_scaled_floorplan(self):
        plan = grid_floorplan(10, 10, 2, 2).scaled(20, 5)
        assert plan.width == 20 and plan.height == 5
        assert plan.coverage_fraction() == pytest.approx(1.0)


class TestLayersAndCooling:
    def test_layer_effective_material_with_tsv(self):
        layer = Layer("dev", 0.15, SILICON, tsv_array=TSVArray(0.01, 0.02))
        assert layer.effective_material.conductivity != SILICON.conductivity or True
        assert layer.thickness_m == pytest.approx(0.15e-3)

    def test_power_layer_requires_floorplan(self):
        with pytest.raises(ValueError):
            Layer("dev", 0.15, SILICON, is_power_layer=True)

    def test_vertical_resistance(self):
        layer = Layer("dev", 0.1, SILICON)
        assert layer.vertical_resistance(1e-4) == pytest.approx(0.1e-3 / (100.0 * 1e-4))

    def test_tsv_area_fraction(self):
        array = TSVArray(diameter_mm=0.01, pitch_mm=0.02)
        assert 0.0 < array.area_fraction < 1.0

    def test_heat_sink_resistance_components(self):
        sink = HeatSink()
        assert sink.fin_efficiency() <= 1.0
        assert sink.convection_resistance() > 0
        assert sink.total_resistance() > sink.base_conduction_resistance()

    def test_spreading_resistance_increases_for_smaller_sources(self):
        big = spreading_resistance(4e-4, 9e-4, 1e-3, 400.0, 1000.0)
        small = spreading_resistance(1e-4, 9e-4, 1e-3, 400.0, 1000.0)
        assert small > big >= 0.0

    def test_cooling_effective_htc_positive(self):
        cooling = CoolingSpec()
        htc = cooling.effective_top_htc(256e-6)
        assert htc > 0
        # Effective film coefficient should exceed bare natural convection but
        # stay far below an ideal isothermal contact.
        assert 100.0 < htc < 1e6


class TestChipStack:
    def test_validation_catches_floorplan_mismatch(self, tiny_chip):
        bad_layers = list(tiny_chip.layers)
        bad_layers[0] = Layer(
            "wrong", 0.1, SILICON, grid_floorplan(4, 4, 1, 1), is_power_layer=True
        )
        with pytest.raises(ValueError):
            ChipStack("bad", 8.0, 8.0, bad_layers)

    def test_power_layers_and_blocks(self, tiny_chip):
        assert tiny_chip.num_power_layers == 2
        assert len(tiny_chip.flat_block_names()) == 4
        assert tiny_chip.layer_index("core_layer") == 1

    def test_split_power_assignment(self, tiny_chip):
        assignment = {"core_layer/core": 10.0, "cache_layer/l2_left": 5.0}
        per_layer = tiny_chip.split_power_assignment(assignment)
        assert per_layer["core_layer"]["core"] == 10.0
        assert per_layer["cache_layer"]["l2_left"] == 5.0
        assert tiny_chip.total_power(assignment) == pytest.approx(15.0)

    def test_split_rejects_malformed_keys(self, tiny_chip):
        with pytest.raises(KeyError):
            tiny_chip.split_power_assignment({"core": 1.0})
        with pytest.raises(KeyError):
            tiny_chip.split_power_assignment({"tim/core": 1.0})

    def test_layer_z_extents(self, tiny_chip):
        extents = tiny_chip.layer_z_extents_mm()
        assert extents[0][0] == 0.0
        assert extents[-1][1] == pytest.approx(tiny_chip.total_thickness_mm)

    def test_summary_mentions_every_layer(self, tiny_chip):
        text = tiny_chip.summary()
        for layer in tiny_chip.layers:
            assert layer.name in text
