"""Property-based tests (hypothesis) for the chip-modelling data structures."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.chip.floorplan import Floorplan, FloorplanBlock, grid_floorplan
from repro.chip.materials import COPPER, SILICON, tsv_effective_material
from repro.chip.cooling import HeatSink, spreading_resistance
from repro.data.power import PowerSampler
from repro.chip.designs import get_chip

_settings = settings(max_examples=25, deadline=None)


class TestFloorplanProperties:
    @_settings
    @given(
        columns=st.integers(1, 4),
        rows=st.integers(1, 4),
        width=st.floats(2.0, 30.0),
        height=st.floats(2.0, 30.0),
    )
    def test_grid_floorplan_always_tiles_the_die(self, columns, rows, width, height):
        plan = grid_floorplan(width, height, columns, rows)
        assert len(plan.blocks) == columns * rows
        assert abs(plan.coverage_fraction() - 1.0) < 1e-9

    @_settings
    @given(
        columns=st.integers(1, 3),
        rows=st.integers(1, 3),
        nx=st.integers(6, 24),
        powers=st.lists(st.floats(0.0, 20.0), min_size=9, max_size=9),
    )
    def test_power_density_map_conserves_total_power(self, columns, rows, nx, powers):
        plan = grid_floorplan(12.0, 12.0, columns, rows)
        assignment = {
            name: powers[index % len(powers)] for index, name in enumerate(plan.block_names)
        }
        density = plan.power_density_map(assignment, nx, nx)
        cell_area = (12.0e-3 / nx) ** 2
        total = float(sum(assignment.values()))
        assert abs(density.sum() * cell_area - total) <= 1e-6 * max(total, 1.0)
        assert (density >= 0).all()

    @_settings
    @given(
        x=st.floats(0.0, 5.0), y=st.floats(0.0, 5.0),
        w=st.floats(0.5, 5.0), h=st.floats(0.5, 5.0),
    )
    def test_block_overlap_is_symmetric(self, x, y, w, h):
        fixed = FloorplanBlock("fixed", 2.0, 2.0, 3.0, 3.0)
        moving = FloorplanBlock("moving", x, y, w, h)
        assert fixed.overlaps(moving) == moving.overlaps(fixed)

    @_settings
    @given(scale=st.floats(0.5, 4.0))
    def test_scaling_preserves_coverage(self, scale):
        plan = grid_floorplan(10.0, 8.0, 2, 3)
        scaled = plan.scaled(10.0 * scale, 8.0 * scale)
        assert abs(scaled.coverage_fraction() - 1.0) < 1e-9


class TestMaterialAndCoolingProperties:
    @_settings
    @given(diameter=st.floats(0.001, 0.01), pitch=st.floats(0.011, 0.05))
    def test_tsv_effective_conductivity_bounded_by_constituents(self, diameter, pitch):
        composite = tsv_effective_material(SILICON, COPPER, diameter, pitch)
        low = min(SILICON.conductivity, COPPER.conductivity)
        high = max(SILICON.conductivity, COPPER.conductivity)
        assert low <= composite.conductivity <= high

    @_settings
    @given(
        source=st.floats(1e-5, 4e-4),
        plate=st.floats(5e-4, 4e-3),
        thickness=st.floats(5e-4, 5e-3),
        htc=st.floats(10.0, 5000.0),
    )
    def test_spreading_resistance_non_negative_and_monotone(self, source, plate, thickness, htc):
        assume(source < plate)
        resistance = spreading_resistance(source, plate, thickness, 400.0, htc)
        larger_source = spreading_resistance(min(source * 2, plate * 0.99), plate, thickness, 400.0, htc)
        assert resistance >= 0.0
        assert larger_source <= resistance + 1e-9

    @_settings
    @given(fins=st.integers(1, 40), htc=st.floats(5.0, 200.0))
    def test_heat_sink_resistance_decreases_with_fin_count(self, fins, htc):
        few = HeatSink(fin_count=fins, air_htc=htc)
        many = HeatSink(fin_count=fins + 5, air_htc=htc)
        assert many.convection_resistance() < few.convection_resistance()


class TestPowerSamplerProperties:
    @_settings
    @given(seed=st.integers(0, 2 ** 31 - 1))
    def test_samples_always_respect_budget_and_non_negativity(self, seed):
        chip = get_chip("chip1")
        sampler = PowerSampler(chip)
        case = sampler.sample(np.random.default_rng(seed))
        low, high = chip.power_budget_W
        assert low - 1e-9 <= case.total_W <= high + 1e-9
        assert all(value >= 0.0 for value in case.assignment.values())
        assert abs(sum(case.assignment.values()) - case.total_W) < 1e-6 * case.total_W

    @_settings
    @given(seed=st.integers(0, 2 ** 31 - 1), nx=st.integers(8, 32))
    def test_rasterisation_conserves_power_for_any_resolution(self, seed, nx):
        chip = get_chip("chip1")
        sampler = PowerSampler(chip)
        case = sampler.sample(np.random.default_rng(seed))
        maps = sampler.rasterize(case, nx)
        cell_area = (chip.die_width_mm * 1e-3 / nx) * (chip.die_height_mm * 1e-3 / nx)
        assert abs(maps.sum() * cell_area - case.total_W) < 1e-6 * case.total_W
