"""Tests that the three benchmark chips match the paper's Table I and Fig. 3."""

import numpy as np
import pytest

from repro.chip.designs import (
    alpha21264_floorplan,
    build_chip1,
    build_chip2,
    build_chip3,
    get_chip,
    list_chips,
)
from repro.evaluation.table1 import check_against_paper


class TestChipDesigns:
    def test_registry(self):
        assert list_chips() == ["chip1", "chip2", "chip3"]
        assert get_chip("CHIP2").name == "chip2"
        with pytest.raises(KeyError):
            get_chip("chip9")

    def test_chip1_structure(self):
        chip = build_chip1()
        assert chip.die_width_mm == 16.0 and chip.die_height_mm == 16.0
        assert chip.num_power_layers == 2
        core = chip.get_layer("core_layer")
        assert core.thickness_mm == pytest.approx(0.15)
        assert {b.name for b in core.floorplan.blocks} == {"Core", "L1_1", "L1_2", "L2"}
        cache = chip.get_layer("l2_cache_layer")
        assert len(cache.floorplan.blocks) == 3
        assert chip.get_layer("tim").thickness_mm == pytest.approx(0.02)

    def test_chip2_structure(self):
        chip = build_chip2()
        assert chip.die_width_mm == pytest.approx(12.4)
        assert chip.die_height_mm == pytest.approx(12.76)
        assert chip.num_power_layers == 3
        core = chip.get_layer("core_layer")
        assert {b.name for b in core.floorplan.blocks} == {"Core1", "Core2", "Core3", "Core4"}
        # The core layer is the top device layer (closest to the heat sink).
        assert chip.layer_index("core_layer") > chip.layer_index("l2_cache_layer_2")

    def test_chip3_structure(self):
        chip = build_chip3()
        assert chip.die_width_mm == 10.0
        core = chip.get_layer("core_layer")
        names = {b.name for b in core.floorplan.blocks}
        assert names == {"CrossBar"} | {f"C{i}" for i in range(1, 9)}
        assert chip.get_layer("core_layer").thickness_mm == pytest.approx(0.10)
        assert chip.get_layer("tim").thickness_mm == pytest.approx(0.052)

    def test_all_floorplans_tile_their_die(self):
        for name in list_chips():
            chip = get_chip(name)
            for layer in chip.power_layers:
                assert layer.floorplan.coverage_fraction() == pytest.approx(1.0, abs=1e-6)

    def test_tsv_arrays_present_on_device_layers(self):
        for name in list_chips():
            chip = get_chip(name)
            for layer in chip.power_layers:
                assert layer.tsv_array is not None
                assert layer.tsv_array.diameter_mm == pytest.approx(0.01)
                assert layer.tsv_array.pitch_mm == pytest.approx(0.01)

    def test_cooling_assembly_matches_table1(self):
        chip = build_chip1()
        assert chip.cooling.spreader.width_mm == 30.0
        assert chip.cooling.sink.base_thickness_mm == pytest.approx(6.9)
        assert chip.cooling.sink.fin_count == 21
        assert chip.cooling.ambient_K == pytest.approx(298.15)

    def test_thermal_parameters_match_paper(self):
        assert check_against_paper() == []

    def test_alpha21264_floorplan(self):
        plan = alpha21264_floorplan()
        assert plan.coverage_fraction() == pytest.approx(1.0, abs=1e-6)
        assert "IntExec" in plan.block_names and "Icache" in plan.block_names
        scaled = alpha21264_floorplan(10.0, 12.0)
        assert scaled.width == 10.0 and scaled.height == 12.0

    def test_power_budgets_are_sane(self):
        for name in list_chips():
            low, high = get_chip(name).power_budget_W
            assert 10.0 < low < high < 200.0
