"""Doc examples are tests: the documentation cannot drift from the code.

Three layers of enforcement:

* every ```` ```python ```` block in ``docs/SERVING.md``,
  ``docs/ARCHITECTURE.md``, ``docs/OBSERVABILITY.md`` and
  ``docs/CLUSTER.md`` is **executed** (they are written at tiny
  resolutions so this is cheap);
* every ```` ```python ```` block in ``docs/API.md`` and ``README.md`` is
  **compiled** (some of those snippets train models or bind ports, so they
  are syntax-checked rather than run);
* every dotted ``repro...`` name mentioned in ``docs/API.md`` — including
  each "old → new" mapping row — must **import/resolve**, so the reference
  can never point at a renamed symbol.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def _python_blocks(path: Path):
    text = path.read_text(encoding="utf-8")
    return [(index, match.group(1)) for index, match in enumerate(_FENCE.finditer(text))]


def _block_params(path: Path):
    blocks = _python_blocks(path)
    assert blocks, f"{path.name} documents a Python API but has no python blocks"
    return [
        pytest.param(source, id=f"{path.name}-block{index}")
        for index, source in blocks
    ]


@pytest.mark.parametrize("source", _block_params(DOCS / "SERVING.md"))
def test_serving_md_examples_run(source):
    exec(compile(source, "docs/SERVING.md", "exec"), {"__name__": "__doc_example__"})


@pytest.mark.parametrize("source", _block_params(DOCS / "ARCHITECTURE.md"))
def test_architecture_md_examples_run(source):
    exec(compile(source, "docs/ARCHITECTURE.md", "exec"), {"__name__": "__doc_example__"})


@pytest.mark.parametrize("source", _block_params(DOCS / "OBSERVABILITY.md"))
def test_observability_md_examples_run(source):
    exec(compile(source, "docs/OBSERVABILITY.md", "exec"), {"__name__": "__doc_example__"})


@pytest.mark.parametrize("source", _block_params(DOCS / "CLUSTER.md"))
def test_cluster_md_examples_run(source):
    exec(compile(source, "docs/CLUSTER.md", "exec"), {"__name__": "__doc_example__"})


@pytest.mark.parametrize("source", _block_params(DOCS / "API.md"))
def test_api_md_examples_compile(source):
    compile(source, "docs/API.md", "exec")


@pytest.mark.parametrize("source", _block_params(REPO_ROOT / "README.md"))
def test_readme_examples_compile(source):
    compile(source, "README.md", "exec")


# ----------------------------------------------------------------------
# Old -> new mapping rows must keep importing.
# ----------------------------------------------------------------------
_DOTTED = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)")


def _resolve(dotted: str) -> bool:
    import importlib

    parts = dotted.split(".")
    # Longest importable module prefix, then attribute access for the rest.
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def _mentioned_names():
    text = (DOCS / "API.md").read_text(encoding="utf-8")
    names = sorted(set(_DOTTED.findall(text)))
    assert names, "docs/API.md mentions no repro.* names — wrong file?"
    return names


@pytest.mark.parametrize("dotted", _mentioned_names())
def test_api_md_mentioned_names_resolve(dotted):
    assert _resolve(dotted), f"docs/API.md references '{dotted}', which does not resolve"


def test_mapping_table_names_are_covered():
    """The old->new table's `now` column names all resolve (sanity that the
    regex actually captured the mapping rows, not just prose)."""
    text = (DOCS / "API.md").read_text(encoding="utf-8")
    table = text.split("## Old → new entry points", 1)[1].split("##", 1)[0]
    names = set(_DOTTED.findall(table))
    assert {"repro.api.pool.LRUPool", "repro.api.registry.ModelRegistry"} <= names
    for dotted in sorted(names):
        assert _resolve(dotted), f"mapping table references unresolvable '{dotted}'"
