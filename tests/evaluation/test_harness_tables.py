"""Direct tests of the table/figure harnesses at unit-test scale.

The benchmark suite runs these harnesses at the ``tiny`` scale to regenerate
the paper's tables; here they are exercised at an even smaller "unit" scale so
that structural regressions (missing rows, wrong columns, broken solver or
trainer plumbing) are caught by ``pytest tests/`` without paying benchmark
runtimes.
"""

import numpy as np
import pytest

from repro.data.cache import DatasetCache
from repro.evaluation import ExperimentScale, ModelSizeConfig
from repro.evaluation.ablation import run_attention_ablation
from repro.evaluation.figures import run_figure_cases
from repro.evaluation.speedup import run_speedup_study
from repro.evaluation.table2 import run_table2, summarize_ordering
from repro.evaluation.table3 import run_table3
from repro.evaluation.table4 import run_table4


@pytest.fixture(scope="module")
def unit_scale():
    return ExperimentScale(
        name="unit",
        resolutions=(10, 12),
        num_samples=8,
        train_fraction=0.75,
        epochs=1,
        batch_size=4,
        learning_rate=2e-3,
        weight_decay=1e-5,
        model=ModelSizeConfig(
            width=8, modes1=3, modes2=3, num_fourier_layers=1, num_ufourier_layers=1,
            unet_base_channels=4, unet_levels=1, attention_dim=4,
            deeponet_latent_dim=8, deeponet_sensor_resolution=4, gar_components=4,
        ),
        transfer_low_resolution=8,
        transfer_high_resolution=12,
        transfer_num_low=6,
        transfer_num_high=4,
        transfer_epochs=1,
        table4_num_cases=1,
        table4_reference_resolution=14,
        table4_standard_resolution=10,
        seed=1,
    )


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return DatasetCache(str(tmp_path_factory.mktemp("harness_cache")))


class TestTableHarnesses:
    def test_table2_rows_structure(self, unit_scale, cache):
        rows = run_table2(scale=unit_scale, cache=cache, methods=("fno", "gar", "sau_fno"))
        # One row per method per resolution.
        assert len(rows) == 3 * len(unit_scale.resolutions)
        expected_columns = {"Method", "Resolution", "RMSE", "MAPE", "PAPE", "Max", "Mean"}
        for row in rows:
            assert expected_columns <= set(row)
            assert float(row["RMSE"]) > 0
        flags = summarize_ordering(rows)
        assert set(flags) == {"sau_fno_beats_fno_rmse", "sau_fno_beats_deepoheat_rmse"}

    def test_table3_rows_structure(self, unit_scale, cache):
        rows = run_table3(scale=unit_scale, cache=cache, methods=("fno",))
        assert len(rows) == 2  # from-scratch and transfer
        assert {row["Transfer"] for row in rows} == {"-", "yes"}
        assert all(float(row["RMSE"]) > 0 for row in rows)

    def test_table4_rows_structure(self, unit_scale, cache):
        result = run_table4(scale=unit_scale, cache=cache, chip_names=("chip1",))
        rows, timing_rows = result["rows"], result["timing_rows"]
        assert len(rows) == 2  # Max and Min for the single chip
        assert {row["Metric"] for row in rows} == {"Max(K)", "Min(K)"}
        for row in rows:
            for column in ("COMSOL", "MTA", "Hotspot", "Ours", "Error*"):
                assert column in row
        assert len(timing_rows) == 1
        assert timing_rows[0]["Speedup vs COMSOL"] > 0

    def test_figure_cases_structure(self, unit_scale, cache):
        cases = run_figure_cases(scale=unit_scale, cache=cache)
        assert len(cases) == 2
        for case in cases:
            assert case.ground_truth.shape == case.prediction.shape
            assert case.power_maps.shape[0] == len(case.layer_names)
            rendered = case.render(width=16)
            assert case.name in rendered and "metrics" in rendered

    def test_ablation_rows_structure(self, unit_scale, cache):
        variants = (
            ("no attention (U-FNO)", {"attention_placement": "none"}),
            ("attention after last layer", {"attention_placement": "last"}),
        )
        rows = run_attention_ablation(scale=unit_scale, cache=cache, variants=variants)
        assert [row["Method"] for row in rows] == [label for label, _ in variants]

    def test_speedup_study_structure(self, unit_scale, cache):
        result = run_speedup_study(scale=unit_scale, cache=cache, num_cases=1, train_epochs=1)
        for key in (
            "fvm_seconds_per_case",
            "hotspot_seconds_per_case",
            "operator_seconds_per_case",
            "speedup_vs_fvm",
            "amortization_cases",
        ):
            assert result[key] > 0
