"""Tests for the experiment harness: scales, reporting, runners and tables."""

import numpy as np
import pytest

from repro.data.cache import DatasetCache
from repro.evaluation import (
    ExperimentScale,
    ModelSizeConfig,
    SCALES,
    format_table,
    get_scale,
    rows_to_markdown,
    run_table1,
    scale_from_env,
    train_operator,
)
from repro.evaluation.reporting import ascii_heatmap
from repro.evaluation.table1 import check_against_paper
from repro.evaluation.table2 import summarize_ordering
from repro.evaluation.table3 import summarize_transfer


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"tiny", "small", "paper"}
        assert get_scale("tiny").name == "tiny"
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert scale_from_env().name == "small"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert scale_from_env().name == "tiny"

    def test_paper_scale_matches_paper_protocol(self):
        paper = get_scale("paper")
        assert paper.num_samples == 5000
        assert paper.resolutions == (40, 64)
        assert paper.epochs >= 200
        assert paper.transfer_num_low == 4000 and paper.transfer_num_high == 1000
        assert paper.model.unet_base_channels == 64 and paper.model.unet_levels == 4
        assert paper.model.attention_dim == 64
        assert paper.learning_rate == pytest.approx(1e-4)
        assert paper.weight_decay == pytest.approx(1e-5)

    def test_scales_are_ordered_in_cost(self):
        tiny, small, paper = get_scale("tiny"), get_scale("small"), get_scale("paper")
        assert tiny.num_samples < small.num_samples < paper.num_samples
        assert tiny.epochs < small.epochs <= paper.epochs

    def test_model_config_as_dict_keys(self):
        keys = set(ModelSizeConfig(8, 4, 4, 1, 1, 4, 1, 8).as_dict())
        assert {"width", "modes1", "attention_dim", "n_components"} <= keys

    def test_num_train(self):
        scale = get_scale("tiny")
        assert scale.num_train == int(round(scale.num_samples * scale.train_fraction))


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"Method": "FNO", "RMSE": 0.5}, {"Method": "SAU-FNO", "RMSE": 0.25}]
        text = format_table(rows, title="Table II")
        assert "Table II" in text and "SAU-FNO" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_markdown_table(self):
        rows = [{"A": 1, "B": 2.5}]
        text = rows_to_markdown(rows, title="demo")
        assert "| A | B |" in text and "| 1 | 2.500 |" in text

    def test_ascii_heatmap_dimensions_and_extremes(self):
        field = np.linspace(0, 1, 256).reshape(16, 16)
        art = ascii_heatmap(field, width=16)
        lines = art.splitlines()
        assert all(len(line) == 16 for line in lines)
        # The gradient field must span several intensity levels, cold to hot.
        assert " " in art
        assert len(set(art.replace("\n", ""))) >= 5

    def test_ascii_heatmap_width_clamped_to_field(self):
        art = ascii_heatmap(np.linspace(0, 1, 64).reshape(8, 8), width=40)
        assert all(len(line) == 8 for line in art.splitlines())

    def test_ascii_heatmap_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2, 2)))


class TestTable1:
    def test_rows_cover_all_chips_and_layers(self):
        rows = run_table1()
        chips = {row["Chip"] for row in rows}
        assert chips == {"chip1", "chip2", "chip3"}
        layers = [row["Layer"] for row in rows if row["Chip"] == "chip1"]
        assert "core_layer" in layers and "heat_sink" in layers

    def test_no_mismatch_with_paper(self):
        assert check_against_paper() == []


class TestRunners:
    @pytest.fixture(scope="class")
    def tiny_scale(self):
        return ExperimentScale(
            name="unit",
            resolutions=(12, 16),
            num_samples=10,
            train_fraction=0.8,
            epochs=2,
            batch_size=4,
            learning_rate=2e-3,
            weight_decay=1e-5,
            model=ModelSizeConfig(
                width=8, modes1=3, modes2=3, num_fourier_layers=1, num_ufourier_layers=1,
                unet_base_channels=4, unet_levels=1, attention_dim=4,
            ),
            transfer_low_resolution=10,
            transfer_high_resolution=14,
            transfer_num_low=8,
            transfer_num_high=6,
            transfer_epochs=2,
            table4_num_cases=2,
            table4_reference_resolution=16,
            table4_standard_resolution=12,
        )

    def test_train_operator_gradient_model(self, tiny_dataset, tiny_scale):
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        result = train_operator("fno", split, tiny_scale)
        assert result.method == "fno"
        assert result.metrics.rmse > 0
        assert result.train_seconds > 0
        row = result.row()
        assert row["Resolution"] == "16*16"

    def test_train_operator_gar(self, tiny_dataset, tiny_scale):
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        result = train_operator("gar", split, tiny_scale)
        assert result.metrics.rmse > 0
        assert result.inference_seconds_per_case >= 0

    def test_summarize_ordering_flags(self):
        rows = [
            {"Method": "FNO", "Resolution": "16*16", "RMSE": 1.0, "Max": 2.0},
            {"Method": "DeepOHeat", "Resolution": "16*16", "RMSE": 1.5, "Max": 2.0},
            {"Method": "SAU-FNO (Ours)", "Resolution": "16*16", "RMSE": 0.5, "Max": 1.0},
        ]
        flags = summarize_ordering(rows)
        assert flags["sau_fno_beats_fno_rmse"] and flags["sau_fno_beats_deepoheat_rmse"]

    def test_summarize_transfer_ratio(self):
        rows = [
            {"Method": "FNO", "Transfer": "-", "RMSE": 1.0},
            {"Method": "FNO", "Transfer": "yes", "RMSE": 1.2},
        ]
        summary = summarize_transfer(rows)
        assert summary["FNO_rmse_ratio"] == pytest.approx(1.2)
