"""Tests for the markdown report generator and its CLI entry point."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.data.cache import DatasetCache
from repro.evaluation import ExperimentScale, ModelSizeConfig, generate_report


@pytest.fixture(scope="module")
def unit_scale():
    return ExperimentScale(
        name="unit",
        resolutions=(10, 12),
        num_samples=6,
        train_fraction=0.7,
        epochs=1,
        batch_size=4,
        learning_rate=2e-3,
        weight_decay=1e-5,
        model=ModelSizeConfig(
            width=8, modes1=3, modes2=3, num_fourier_layers=1, num_ufourier_layers=1,
            unet_base_channels=4, unet_levels=1, attention_dim=4,
            deeponet_latent_dim=8, deeponet_sensor_resolution=4, gar_components=4,
        ),
        transfer_low_resolution=8,
        transfer_high_resolution=12,
        transfer_num_low=5,
        transfer_num_high=4,
        transfer_epochs=1,
        table4_num_cases=1,
        table4_reference_resolution=14,
        table4_standard_resolution=10,
        seed=2,
    )


class TestGenerateReport:
    def test_report_contains_every_section(self, tmp_path, unit_scale):
        cache = DatasetCache(str(tmp_path / "cache"))
        output = tmp_path / "report.md"
        text = generate_report(
            str(output),
            scale=unit_scale,
            cache=cache,
            include_speedup=False,
            include_ablation=False,
        )
        assert output.exists()
        assert output.read_text() == text
        for heading in (
            "Table I — chip geometry",
            "Table II — comparison with ML baselines",
            "Table III — transfer learning",
            "Table IV — solver comparison",
            "Per-case runtime and speedups",
        ):
            assert heading in text
        # Markdown tables are present and well-formed.
        assert text.count("|---") >= 5
        assert "SAU-FNO" in text

    def test_cli_report_arguments(self):
        args = build_parser().parse_args(["report", "--output", "r.md", "--scale", "tiny", "--quiet"])
        assert args.output == "r.md" and args.scale == "tiny" and args.quiet
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--scale", "enormous"])
