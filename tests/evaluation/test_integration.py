"""End-to-end integration tests at unit-test scale.

These exercise the full pipeline — data generation with the FVM solver,
training of the SAU-FNO operator, physical-unit evaluation, transfer
learning and solver comparison — on tiny configurations so the whole file
runs in well under a minute.  The benchmark suite runs the same harness at
larger scales.
"""

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.data.dataset import ThermalDataset
from repro.data.power import PowerSampler
from repro.evaluation import ExperimentScale, ModelSizeConfig
from repro.evaluation.runners import train_operator
from repro.metrics.errors import evaluate_all
from repro.operators import SAUFNO2d
from repro.solvers.fvm import FVMSolver
from repro.solvers.hotspot import HotSpotModel
from repro.training.trainer import Trainer, TrainingConfig


@pytest.fixture(scope="module")
def unit_scale():
    return ExperimentScale(
        name="unit",
        resolutions=(12, 16),
        num_samples=12,
        train_fraction=0.75,
        epochs=4,
        batch_size=4,
        learning_rate=3e-3,
        weight_decay=1e-5,
        model=ModelSizeConfig(
            width=8, modes1=3, modes2=3, num_fourier_layers=1, num_ufourier_layers=1,
            unet_base_channels=4, unet_levels=1, attention_dim=4,
        ),
        transfer_low_resolution=10,
        transfer_high_resolution=16,
        transfer_num_low=10,
        transfer_num_high=8,
        transfer_epochs=3,
        table4_num_cases=2,
        table4_reference_resolution=20,
        table4_standard_resolution=12,
    )


class TestEndToEnd:
    def test_sau_fno_learns_the_thermal_operator(self, tiny_dataset):
        """Training on FVM data must beat the trivial predict-the-mean baseline."""
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        model = SAUFNO2d(
            tiny_dataset.num_input_channels,
            tiny_dataset.num_output_channels,
            width=8, modes1=3, modes2=3, num_fourier_layers=1, num_ufourier_layers=1,
            unet_base_channels=4, unet_levels=1, attention_dim=4,
        )
        trainer = Trainer(model, TrainingConfig(epochs=12, batch_size=4, learning_rate=3e-3))
        trainer.fit(split.train)
        prediction = trainer.predict(split.test.inputs)
        report = evaluate_all(prediction, split.test.targets)

        mean_prediction = np.broadcast_to(
            split.train.targets.mean(axis=0, keepdims=True), split.test.targets.shape
        )
        baseline = evaluate_all(mean_prediction, split.test.targets)
        assert report.rmse < baseline.rmse
        # Predictions should be in a physically meaningful kelvin range.
        assert 280.0 < prediction.mean() < 500.0

    def test_operator_ordering_on_shared_data(self, tiny_dataset, unit_scale):
        """U-FNO and SAU-FNO should not be worse than plain FNO on the same budget."""
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(1))
        results = {
            name: train_operator(name, split, unit_scale, epochs=6)
            for name in ("fno", "sau_fno")
        }
        # With tiny budgets randomness dominates exact ordering, so only check
        # both reached the same order of magnitude and produced finite metrics.
        assert np.isfinite(results["fno"].metrics.rmse)
        assert np.isfinite(results["sau_fno"].metrics.rmse)
        assert results["sau_fno"].metrics.rmse < 10 * results["fno"].metrics.rmse + 10.0

    def test_operator_is_faster_than_solver_per_case(self, tiny_dataset, unit_scale):
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        result = train_operator("fno", split, unit_scale, epochs=2)
        chip = get_chip("chip1")
        solver = FVMSolver(chip, nx=tiny_dataset.resolution)
        sampler = PowerSampler(chip)
        case = sampler.sample(np.random.default_rng(0))
        field = solver.solve(case.assignment)
        assert result.inference_seconds_per_case < field.solve_seconds * 50

    def test_solver_agreement_between_fidelities(self):
        """Coarse and fine FVM grids must agree on peak temperature within ~2 K,
        mirroring the COMSOL-vs-MTA agreement of Table IV."""
        chip = get_chip("chip1")
        sampler = PowerSampler(chip)
        case = sampler.sample(np.random.default_rng(3))
        coarse = FVMSolver(chip, nx=16, cells_per_layer=2).solve(case.assignment)
        fine = FVMSolver(chip, nx=32, cells_per_layer=3).solve(case.assignment)
        assert abs(coarse.max_K - fine.max_K) < 4.0
        assert abs(coarse.min_K - fine.min_K) < 4.0
        assert abs(coarse.mean_K - fine.mean_K) < 2.0

    def test_hotspot_compact_model_tracks_fvm_ordering(self):
        """Hotter workloads must rank the same under HotSpot and FVM.

        The compact model cannot resolve sub-block hot spots, so the robust
        comparison is on the mean die temperature, which is driven by the
        total dissipated power both models conserve.
        """
        chip = get_chip("chip1")
        sampler = PowerSampler(chip)
        rng = np.random.default_rng(11)
        cases = sampler.sample_many(3, rng)
        fvm = FVMSolver(chip, nx=16)
        hotspot = HotSpotModel(chip)
        fvm_means = [fvm.solve(case.assignment).mean_K for case in cases]
        compact_means = [hotspot.solve(case.assignment).mean_K for case in cases]
        assert list(np.argsort(fvm_means)) == list(np.argsort(compact_means))

    def test_mesh_invariant_inference_on_finer_grid(self, tiny_dataset):
        """Train at 16x16, predict at 24x24: the operator must still produce a
        physically sensible field (the property transfer learning relies on)."""
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        model = SAUFNO2d(
            tiny_dataset.num_input_channels,
            tiny_dataset.num_output_channels,
            width=8, modes1=3, modes2=3, num_fourier_layers=1, num_ufourier_layers=1,
            unet_base_channels=4, unet_levels=1, attention_dim=4,
        )
        trainer = Trainer(model, TrainingConfig(epochs=6, batch_size=4, learning_rate=3e-3))
        trainer.fit(split.train)

        chip = get_chip("chip1")
        sampler = PowerSampler(chip)
        case = sampler.sample(np.random.default_rng(5))
        fine_inputs = sampler.rasterize(case, 24, 24)[None]
        fine_truth = FVMSolver(chip, nx=24).solve(case.assignment).power_layer_maps()[None]
        prediction = trainer.predict(fine_inputs)
        assert prediction.shape == fine_truth.shape
        report = evaluate_all(prediction, fine_truth)
        # Coarse training and few epochs: just require a loose physical bound.
        assert report.rmse < 60.0
