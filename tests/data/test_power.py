"""Tests for the shared power-assignment parsing/validation helpers."""

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.data.power import (
    PowerSampler,
    parse_power_spec,
    rasterize_assignment,
    uniform_power_assignment,
    validate_power_assignment,
)


@pytest.fixture
def chip():
    return get_chip("chip1")


class TestValidatePowerAssignment:
    def test_valid_mapping_coerces_to_float(self, chip):
        name = chip.flat_block_names()[0]
        result = validate_power_assignment(chip, {name: "12.5"})
        assert result == {name: 12.5}

    def test_unknown_block_raises_keyerror(self, chip):
        with pytest.raises(KeyError, match="unknown block 'bogus/block'"):
            validate_power_assignment(chip, {"bogus/block": 1.0})

    def test_negative_power_raises(self, chip):
        name = chip.flat_block_names()[0]
        with pytest.raises(ValueError, match="non-negative"):
            validate_power_assignment(chip, {name: -3.0})

    def test_non_numeric_and_non_finite_raise(self, chip):
        name = chip.flat_block_names()[0]
        with pytest.raises(ValueError, match="must be a number"):
            validate_power_assignment(chip, {name: "lots"})
        with pytest.raises(ValueError, match="finite"):
            validate_power_assignment(chip, {name: float("nan")})


class TestUniformAssignment:
    def test_spreads_total_over_all_blocks(self, chip):
        assignment = uniform_power_assignment(chip, 60.0)
        assert set(assignment) == set(chip.flat_block_names())
        assert abs(sum(assignment.values()) - 60.0) < 1e-9
        values = list(assignment.values())
        assert max(values) - min(values) < 1e-12

    def test_defaults_to_budget_midpoint(self, chip):
        assignment = uniform_power_assignment(chip)
        expected = sum(chip.power_budget_W) / 2
        assert abs(sum(assignment.values()) - expected) < 1e-9

    def test_negative_total_rejected(self, chip):
        with pytest.raises(ValueError):
            uniform_power_assignment(chip, -5.0)


class TestParsePowerSpec:
    def test_json_path(self, chip):
        name = chip.flat_block_names()[0]
        assignment = parse_power_spec(chip, powers_json=f'{{"{name}": 20.0}}')
        assert assignment == {name: 20.0}

    def test_malformed_json_raises_valueerror(self, chip):
        with pytest.raises(ValueError, match="malformed power JSON"):
            parse_power_spec(chip, powers_json="{not json")

    def test_non_object_json_rejected(self, chip):
        with pytest.raises(ValueError, match="must be an object"):
            parse_power_spec(chip, powers_json="[1, 2, 3]")

    def test_unknown_block_propagates(self, chip):
        with pytest.raises(KeyError, match="unknown block"):
            parse_power_spec(chip, powers_json='{"bogus/block": 1.0}')

    def test_falls_back_to_uniform(self, chip):
        assignment = parse_power_spec(chip, total_power_W=44.0)
        assert abs(sum(assignment.values()) - 44.0) < 1e-9


class TestRasterizeAssignment:
    def test_matches_per_layer_floorplan_rasterisation(self, chip, rng):
        """Independent oracle: split the flat assignment by hand and rasterise
        each power layer's floorplan directly (the pre-refactor construction)."""
        case = PowerSampler(chip).sample(rng)
        direct = rasterize_assignment(chip, case.assignment, 16)
        assert direct.shape == (chip.num_power_layers, 16, 16)
        per_layer = {layer.name: {} for layer in chip.power_layers}
        for key, watts in case.assignment.items():
            layer_name, block_name = key.split("/", 1)
            per_layer[layer_name][block_name] = watts
        for index, layer in enumerate(chip.power_layers):
            expected = layer.floorplan.power_density_map(per_layer[layer.name], 16, 16)
            np.testing.assert_array_equal(direct[index], expected)

    def test_power_integral_preserved(self, chip):
        assignment = uniform_power_assignment(chip, 50.0)
        maps = rasterize_assignment(chip, assignment, 24)
        cell_area_m2 = (chip.die_width_mm * 1e-3 / 24) * (chip.die_height_mm * 1e-3 / 24)
        total = maps.sum() * cell_area_m2
        assert abs(total - 50.0) / 50.0 < 0.05  # up to block-edge rasterisation
