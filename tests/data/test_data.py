"""Tests for power sampling, datasets, normalisation, generation and caching."""

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.solvers.voxelize import build_geometry
from repro.data import (
    DatasetCache,
    DatasetSpec,
    Normalizer,
    PowerSampler,
    ThermalDataset,
    generate_dataset,
    generate_multifidelity_pair,
)


class TestPowerSampler:
    def test_total_power_within_budget(self, tiny_chip, rng):
        sampler = PowerSampler(tiny_chip)
        for _ in range(20):
            case = sampler.sample(rng)
            low, high = tiny_chip.power_budget_W
            assert low <= case.total_W <= high
            assert sum(case.assignment.values()) == pytest.approx(case.total_W, rel=1e-6)

    def test_all_powers_non_negative(self, tiny_chip, rng):
        sampler = PowerSampler(tiny_chip)
        case = sampler.sample(rng)
        assert all(value >= 0 for value in case.assignment.values())
        assert set(case.assignment) == set(tiny_chip.flat_block_names())

    def test_core_bias_raises_core_density(self, tiny_chip):
        sampler = PowerSampler(tiny_chip, core_bias=10.0, idle_probability=0.0)
        rng = np.random.default_rng(0)
        core_density, cache_density = [], []
        core_area = tiny_chip.get_layer("core_layer").floorplan.get_block("core").area_mm2
        cache_area = tiny_chip.get_layer("cache_layer").floorplan.get_block("l2_left").area_mm2
        for _ in range(50):
            case = sampler.sample(rng)
            core_density.append(case.assignment["core_layer/core"] / core_area)
            cache_density.append(case.assignment["cache_layer/l2_left"] / cache_area)
        assert np.mean(core_density) > np.mean(cache_density)

    def test_custom_power_range(self, tiny_chip, rng):
        sampler = PowerSampler(tiny_chip, total_power_range_W=(5.0, 6.0))
        case = sampler.sample(rng)
        assert 5.0 <= case.total_W <= 6.0

    def test_invalid_parameters_rejected(self, tiny_chip):
        with pytest.raises(ValueError):
            PowerSampler(tiny_chip, total_power_range_W=(5.0, 1.0))
        with pytest.raises(ValueError):
            PowerSampler(tiny_chip, idle_probability=1.5)
        with pytest.raises(ValueError):
            PowerSampler(tiny_chip, core_bias=0.0)

    def test_contrast_case_concentrates_power(self, tiny_chip, rng):
        sampler = PowerSampler(tiny_chip)
        case = sampler.contrast_case(["core_layer/core"], rng)
        assert case.assignment["core_layer/core"] > 0.5 * case.total_W
        with pytest.raises(KeyError):
            sampler.contrast_case(["nope"], rng)

    def test_rasterize_shape_and_conservation(self, tiny_chip, rng):
        sampler = PowerSampler(tiny_chip)
        case = sampler.sample(rng)
        maps = sampler.rasterize(case, 16)
        assert maps.shape == (2, 16, 16)
        cell_area = (tiny_chip.die_width_mm * 1e-3 / 16) * (tiny_chip.die_height_mm * 1e-3 / 16)
        assert maps.sum() * cell_area == pytest.approx(case.total_W, rel=1e-6)

    def test_sample_many_length(self, tiny_chip, rng):
        assert len(PowerSampler(tiny_chip).sample_many(7, rng)) == 7


class TestNormalizer:
    def test_fit_transform_statistics(self, rng):
        data = rng.standard_normal((20, 3, 8, 8)) * 5 + 2
        normalizer = Normalizer()
        transformed = normalizer.fit_transform(data)
        np.testing.assert_allclose(transformed.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(transformed.std(axis=(0, 2, 3)), 1.0, atol=1e-6)

    def test_inverse_transform_roundtrip(self, rng):
        data = rng.standard_normal((10, 2, 4, 4)) * 3 + 7
        normalizer = Normalizer().fit(data)
        np.testing.assert_allclose(
            normalizer.inverse_transform(normalizer.transform(data)), data, rtol=1e-6
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Normalizer().transform(np.zeros((1, 1, 2, 2)))

    def test_constant_channel_does_not_divide_by_zero(self):
        data = np.ones((5, 1, 3, 3))
        out = Normalizer().fit_transform(data)
        assert np.isfinite(out).all()

    def test_state_dict_roundtrip(self, rng):
        data = rng.standard_normal((6, 2, 3, 3))
        normalizer = Normalizer().fit(data)
        restored = Normalizer.from_state_dict(normalizer.state_dict())
        np.testing.assert_allclose(restored.transform(data), normalizer.transform(data))


class TestThermalDataset:
    def _dataset(self, n=10):
        rng = np.random.default_rng(0)
        return ThermalDataset(
            inputs=rng.standard_normal((n, 2, 8, 8)),
            targets=rng.standard_normal((n, 2, 8, 8)) + 300,
            chip_name="tiny",
            resolution=8,
            metadata={"total_power_W": np.arange(n, dtype=float)},
        )

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ThermalDataset(rng.standard_normal((3, 2, 4, 4)), rng.standard_normal((4, 2, 4, 4)), "x", 4)
        with pytest.raises(ValueError):
            ThermalDataset(rng.standard_normal((3, 2, 4, 4)), rng.standard_normal((3, 2, 5, 5)), "x", 4)

    def test_split_sizes_and_disjointness(self):
        dataset = self._dataset(10)
        split = dataset.split(0.8, rng=np.random.default_rng(1))
        assert len(split.train) == 8 and len(split.test) == 2
        assert split.ratio == pytest.approx(4.0)

    def test_subset_carries_metadata(self):
        subset = self._dataset(10).subset([0, 3, 5])
        np.testing.assert_allclose(subset.metadata["total_power_W"], [0.0, 3.0, 5.0])

    def test_batches_cover_all_samples(self):
        dataset = self._dataset(10)
        seen = 0
        for x, y in dataset.batches(3, shuffle=False):
            assert x.shape[0] == y.shape[0]
            seen += x.shape[0]
        assert seen == 10

    def test_batches_with_normalizers(self):
        dataset = self._dataset(8)
        normalizers = dataset.fit_normalizers()
        batches = list(dataset.batches(8, shuffle=False, normalizers=normalizers))
        assert abs(float(batches[0][1].data.mean())) < 1e-5

    def test_save_and_load_roundtrip(self, tmp_path):
        dataset = self._dataset(6)
        path = tmp_path / "data.npz"
        dataset.save(str(path))
        loaded = ThermalDataset.load(str(path))
        np.testing.assert_allclose(loaded.inputs, dataset.inputs)
        np.testing.assert_allclose(loaded.metadata["total_power_W"], dataset.metadata["total_power_W"])
        assert loaded.chip_name == "tiny" and loaded.resolution == 8


class TestGeneration:
    def test_generate_dataset_deterministic(self):
        spec = DatasetSpec(chip_name="chip1", resolution=12, num_samples=3, seed=7)
        first = generate_dataset(spec)
        second = generate_dataset(spec)
        np.testing.assert_allclose(first.inputs, second.inputs)
        np.testing.assert_allclose(first.targets, second.targets)

    def test_generated_temperatures_physical(self, tiny_dataset):
        assert tiny_dataset.targets.min() > 298.0
        assert tiny_dataset.targets.max() < 600.0
        assert tiny_dataset.inputs.min() >= 0.0

    def test_channels_match_chip_power_layers(self, tiny_dataset):
        chip = get_chip("chip1")
        assert tiny_dataset.num_input_channels == chip.num_power_layers
        assert tiny_dataset.num_output_channels == chip.num_power_layers

    def test_multifidelity_pair_resolutions(self):
        low, high = generate_multifidelity_pair(
            "chip1", low_resolution=10, high_resolution=14, num_low=2, num_high=2, seed=1
        )
        assert low.resolution == 10 and high.resolution == 14
        with pytest.raises(ValueError):
            generate_multifidelity_pair("chip1", 16, 16, 2, 2)

    def test_cache_key_distinguishes_specs(self):
        a = DatasetSpec("chip1", 16, 4, seed=0)
        b = DatasetSpec("chip1", 16, 4, seed=1)
        c = DatasetSpec("chip2", 16, 4, seed=0)
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 3

    def test_cache_key_embeds_solver_version(self):
        from repro.solvers.fvm import SOLVER_VERSION

        spec = DatasetSpec("chip1", 16, 4, seed=0)
        assert f"_v{SOLVER_VERSION}" in spec.cache_key()
        fine = DatasetSpec("chip1", 16, 4, seed=0, cells_per_layer=3)
        assert fine.cache_key() != spec.cache_key()

    def test_generate_dataset_batch_size_invariant(self):
        spec = DatasetSpec(chip_name="chip1", resolution=10, num_samples=5, seed=3)
        small_batches = generate_dataset(spec, batch_size=2)
        one_batch = generate_dataset(spec, batch_size=64)
        np.testing.assert_allclose(small_batches.inputs, one_batch.inputs)
        np.testing.assert_allclose(small_batches.targets, one_batch.targets, atol=1e-9)
        with pytest.raises(ValueError):
            generate_dataset(spec, batch_size=0)

    def test_dataset_cache_generates_then_reuses(self, tmp_path):
        cache = DatasetCache(str(tmp_path))
        spec = DatasetSpec(chip_name="chip1", resolution=10, num_samples=2, seed=5)
        assert not cache.contains(spec)
        first = cache.get(spec)
        assert cache.contains(spec)
        second = cache.get(spec)
        np.testing.assert_allclose(first.inputs, second.inputs)
        assert cache.clear() == 1


class TestMultifidelityGeometrySharing:
    """The low/high pair shares one voxelisation when resolutions allow."""

    def test_coarsened_geometry_equals_direct_build(self):
        chip = get_chip("chip1")
        high = build_geometry(chip, nx=16, cells_per_layer=2)
        derived = high.coarsen(2)
        direct = build_geometry(chip, nx=8, cells_per_layer=2)
        assert (derived.nx, derived.ny) == (direct.nx, direct.ny)
        np.testing.assert_array_equal(derived.conductivity, direct.conductivity)
        np.testing.assert_array_equal(derived.dz_mm, direct.dz_mm)
        np.testing.assert_array_equal(derived.layer_of_cell, direct.layer_of_cell)
        assert derived.power_layer_slices == direct.power_layer_slices
        # The vertical layout is shared, not copied.
        assert derived.dz_mm is high.dz_mm and derived.rasters is high.rasters

    def test_coarsen_validates_factor(self):
        geometry = build_geometry(get_chip("chip1"), nx=12)
        assert geometry.coarsen(1) is geometry
        with pytest.raises(ValueError):
            geometry.coarsen(5)
        with pytest.raises(ValueError):
            geometry.coarsen(0)

    def test_shared_pair_equivalent_to_independent(self):
        shared = generate_multifidelity_pair(
            "chip1", low_resolution=8, high_resolution=16, num_low=3, num_high=2,
            seed=2, share_geometry=True,
        )
        independent = generate_multifidelity_pair(
            "chip1", low_resolution=8, high_resolution=16, num_low=3, num_high=2,
            seed=2, share_geometry=False,
        )
        for left, right in zip(shared, independent):
            np.testing.assert_array_equal(left.inputs, right.inputs)
            np.testing.assert_array_equal(left.targets, right.targets)

    def test_non_divisible_resolutions_fall_back(self):
        low, high = generate_multifidelity_pair(
            "chip1", low_resolution=10, high_resolution=16, num_low=2, num_high=2,
            seed=1, share_geometry=True,
        )
        assert low.resolution == 10 and high.resolution == 16
