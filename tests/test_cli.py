"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--chip", "chip2", "--resolution", "24", "--samples", "8",
             "--output", "out.npz"]
        )
        assert args.chip == "chip2" and args.resolution == 24 and args.samples == 8

    def test_unknown_chip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--chip", "chip9", "--output", "x.npz"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "d.npz"])
        assert args.model == "sau_fno" and args.epochs == 20

    def test_serve_defaults_and_models(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8471 and args.models == [] and args.refine_threshold is None
        args = build_parser().parse_args(
            ["serve", "--model", "a.npz", "--model", "b.npz", "--refine-threshold", "390"]
        )
        assert args.models == ["a.npz", "b.npz"] and args.refine_threshold == 390.0


class TestCommands:
    def test_chips_lists_all_designs(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        for name in ("chip1", "chip2", "chip3"):
            assert name in out

    def test_solve_uniform_power(self, capsys):
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--total-power", "30", "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert "Max (K)" in out and "core_layer" in out

    def test_solve_with_explicit_powers(self, capsys):
        powers = json.dumps({"core_layer/Core": 20.0})
        assert main(["solve", "--chip", "chip1", "--resolution", "12", "--powers", powers]) == 0
        assert "Steady-state solution (fvm backend)" in capsys.readouterr().out

    def test_solve_malformed_powers_json(self, capsys):
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--powers", "{not json"]) == 2
        captured = capsys.readouterr()
        assert "malformed power JSON" in captured.err
        assert "Steady-state" not in captured.out

    def test_solve_unknown_block_name(self, capsys):
        powers = json.dumps({"core_layer/NoSuchBlock": 5.0})
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--powers", powers]) == 2
        assert "unknown block 'core_layer/NoSuchBlock'" in capsys.readouterr().err

    def test_solve_negative_power_rejected(self, capsys):
        powers = json.dumps({"core_layer/Core": -2.0})
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--powers", powers]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_generate_then_train_roundtrip(self, tmp_path, capsys):
        dataset_path = tmp_path / "tiny.npz"
        assert main(["generate", "--chip", "chip1", "--resolution", "12",
                     "--samples", "8", "--output", str(dataset_path)]) == 0
        assert dataset_path.exists()

        model_path = tmp_path / "model.npz"
        assert main(["train", "--dataset", str(dataset_path), "--model", "fno",
                     "--epochs", "1", "--batch-size", "4", "--width", "8",
                     "--modes", "3", "--output", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "Held-out metrics" in out
        assert model_path.exists()
        with np.load(model_path) as archive:
            assert len(archive.files) > 0
            assert "__config__" in archive.files

        # The saved weights are self-describing: the serving model registry
        # can rebuild the model without re-specifying the architecture.
        from repro.operators.factory import load_operator

        loaded = load_operator(str(model_path))
        assert loaded.name == "fno"
        assert loaded.chip_name == "chip1"
        assert loaded.resolution == 12
        assert loaded.has_normalizers
        prediction = loaded.predict(np.zeros((1, loaded.in_channels, 12, 12), dtype=np.float32))
        assert prediction.shape == (1, loaded.out_channels, 12, 12)

    def test_train_gar_without_output(self, tmp_path, capsys):
        dataset_path = tmp_path / "tiny.npz"
        main(["generate", "--chip", "chip1", "--resolution", "12", "--samples", "8",
              "--output", str(dataset_path)])
        assert main(["train", "--dataset", str(dataset_path), "--model", "gar"]) == 0
        assert "Held-out metrics" in capsys.readouterr().out

    def test_solve_with_hotspot_and_transient_backends(self, capsys):
        for backend in ("hotspot", "transient"):
            assert main(["solve", "--chip", "chip1", "--resolution", "10",
                         "--backend", backend, "--total-power", "30"]) == 0
            assert f"({backend} backend)" in capsys.readouterr().out

    def test_solve_operator_backend_with_trained_model(self, tmp_path, capsys):
        dataset_path = tmp_path / "tiny.npz"
        model_path = tmp_path / "model.npz"
        main(["generate", "--chip", "chip1", "--resolution", "12", "--samples", "8",
              "--output", str(dataset_path)])
        main(["train", "--dataset", str(dataset_path), "--model", "fno", "--epochs", "1",
              "--batch-size", "4", "--width", "8", "--modes", "3",
              "--output", str(model_path)])
        capsys.readouterr()
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--backend", "operator", "--model", str(model_path),
                     "--total-power", "30"]) == 0
        assert "(operator backend)" in capsys.readouterr().out


class TestErrorHandling:
    """Every subcommand exits 2 with a one-line message on bad user input."""

    def test_solve_operator_without_model_exits_2(self, capsys):
        assert main(["solve", "--chip", "chip1", "--backend", "operator",
                     "--total-power", "30"]) == 2
        assert "needs at least one --model" in capsys.readouterr().err

    def test_solve_unknown_model_file_exits_2(self, capsys):
        assert main(["solve", "--chip", "chip1", "--backend", "operator",
                     "--model", "/nonexistent/weights.npz", "--total-power", "30"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "does not exist" in err

    def test_solve_model_chip_mismatch_exits_2(self, tmp_path, capsys):
        """A model trained for chip1 cannot answer a chip2 query."""
        dataset_path = tmp_path / "tiny.npz"
        model_path = tmp_path / "model.npz"
        main(["generate", "--chip", "chip1", "--resolution", "12", "--samples", "8",
              "--output", str(dataset_path)])
        main(["train", "--dataset", str(dataset_path), "--model", "fno", "--epochs", "1",
              "--batch-size", "4", "--width", "8", "--modes", "3",
              "--output", str(model_path)])
        capsys.readouterr()
        assert main(["solve", "--chip", "chip2", "--resolution", "12",
                     "--backend", "operator", "--model", str(model_path),
                     "--total-power", "30"]) == 2
        assert "no operator model registered for chip 'chip2'" in capsys.readouterr().err

    def test_train_missing_dataset_exits_2(self, capsys):
        assert main(["train", "--dataset", "/nonexistent/data.npz"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "does not exist" in err

    def test_train_non_dataset_file_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"this is not a dataset")
        assert main(["train", "--dataset", str(bogus)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_serve_unknown_model_file_exits_2(self, capsys):
        assert main(["serve", "--model", "/nonexistent/weights.npz", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "does not exist" in err
