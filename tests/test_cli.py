"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--chip", "chip2", "--resolution", "24", "--samples", "8",
             "--output", "out.npz"]
        )
        assert args.chip == "chip2" and args.resolution == 24 and args.samples == 8

    def test_unknown_chip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--chip", "chip9", "--output", "x.npz"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "d.npz"])
        assert args.model == "sau_fno" and args.epochs == 20

    def test_serve_defaults_and_models(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8471 and args.models == [] and args.refine_threshold is None
        args = build_parser().parse_args(
            ["serve", "--model", "a.npz", "--model", "b.npz", "--refine-threshold", "390"]
        )
        assert args.models == ["a.npz", "b.npz"] and args.refine_threshold == 390.0


class TestCommands:
    def test_chips_lists_all_designs(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        for name in ("chip1", "chip2", "chip3"):
            assert name in out

    def test_solve_uniform_power(self, capsys):
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--total-power", "30", "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert "Max (K)" in out and "core_layer" in out

    def test_solve_with_explicit_powers(self, capsys):
        powers = json.dumps({"core_layer/Core": 20.0})
        assert main(["solve", "--chip", "chip1", "--resolution", "12", "--powers", powers]) == 0
        assert "Steady-state FVM solution" in capsys.readouterr().out

    def test_solve_malformed_powers_json(self, capsys):
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--powers", "{not json"]) == 2
        captured = capsys.readouterr()
        assert "malformed power JSON" in captured.err
        assert "Steady-state" not in captured.out

    def test_solve_unknown_block_name(self, capsys):
        powers = json.dumps({"core_layer/NoSuchBlock": 5.0})
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--powers", powers]) == 2
        assert "unknown block 'core_layer/NoSuchBlock'" in capsys.readouterr().err

    def test_solve_negative_power_rejected(self, capsys):
        powers = json.dumps({"core_layer/Core": -2.0})
        assert main(["solve", "--chip", "chip1", "--resolution", "12",
                     "--powers", powers]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_generate_then_train_roundtrip(self, tmp_path, capsys):
        dataset_path = tmp_path / "tiny.npz"
        assert main(["generate", "--chip", "chip1", "--resolution", "12",
                     "--samples", "8", "--output", str(dataset_path)]) == 0
        assert dataset_path.exists()

        model_path = tmp_path / "model.npz"
        assert main(["train", "--dataset", str(dataset_path), "--model", "fno",
                     "--epochs", "1", "--batch-size", "4", "--width", "8",
                     "--modes", "3", "--output", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "Held-out metrics" in out
        assert model_path.exists()
        with np.load(model_path) as archive:
            assert len(archive.files) > 0
            assert "__config__" in archive.files

        # The saved weights are self-describing: the serving model registry
        # can rebuild the model without re-specifying the architecture.
        from repro.operators.factory import load_operator

        loaded = load_operator(str(model_path))
        assert loaded.name == "fno"
        assert loaded.chip_name == "chip1"
        assert loaded.resolution == 12
        assert loaded.has_normalizers
        prediction = loaded.predict(np.zeros((1, loaded.in_channels, 12, 12), dtype=np.float32))
        assert prediction.shape == (1, loaded.out_channels, 12, 12)

    def test_train_gar_without_output(self, tmp_path, capsys):
        dataset_path = tmp_path / "tiny.npz"
        main(["generate", "--chip", "chip1", "--resolution", "12", "--samples", "8",
              "--output", str(dataset_path)])
        assert main(["train", "--dataset", str(dataset_path), "--model", "gar"]) == 0
        assert "Held-out metrics" in capsys.readouterr().out
