"""Tests for the optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn import Linear
from repro.optim import Adam, CosineAnnealingLR, ExponentialLR, SGD, StepLR


def _quadratic_step(optimizer, param, target):
    optimizer.zero_grad()
    loss = ((param - Tensor(target)) ** 2).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        target = np.array([1.0, 2.0])
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            loss = _quadratic_step(optimizer, param, target)
        assert loss < 1e-6

    def test_momentum_accelerates(self):
        target = np.array([1.0])
        plain = Tensor(np.array([10.0]), requires_grad=True)
        momentum = Tensor(np.array([10.0]), requires_grad=True)
        opt_plain = SGD([plain], lr=0.02)
        opt_momentum = SGD([momentum], lr=0.02, momentum=0.9)
        for _ in range(30):
            _quadratic_step(opt_plain, plain, target)
            _quadratic_step(opt_momentum, momentum, target)
        assert abs(momentum.data[0] - 1.0) < abs(plain.data[0] - 1.0)

    def test_weight_decay_shrinks_parameters(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] < 1.0

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(1), requires_grad=True)], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Tensor(np.array([4.0, -2.0, 7.0]), requires_grad=True)
        target = np.array([0.5, 0.5, 0.5])
        optimizer = Adam([param], lr=0.1)
        for _ in range(400):
            loss = _quadratic_step(optimizer, param, target)
        assert loss < 1e-3

    def test_skips_parameters_without_gradients(self):
        with_grad = Tensor(np.ones(2), requires_grad=True)
        without_grad = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([with_grad, without_grad], lr=0.1)
        with_grad.grad = np.ones(2)
        optimizer.step()
        np.testing.assert_allclose(without_grad.data, np.ones(2))
        assert not np.allclose(with_grad.data, np.ones(2))

    def test_decoupled_weight_decay(self):
        param = Tensor(np.array([2.0]), requires_grad=True)
        optimizer = Adam([param], lr=0.1, weight_decay=0.1)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] < 2.0

    def test_trains_linear_layer(self, rng):
        x = rng.standard_normal((32, 3))
        target = x @ np.array([[1.0], [2.0], [-1.0]])
        layer = Linear(3, 1, rng=np.random.default_rng(0))
        optimizer = Adam(layer.parameters(), lr=0.05)
        initial = None
        for _ in range(150):
            optimizer.zero_grad()
            loss = ((layer(Tensor(x)) - Tensor(target)) ** 2).mean()
            loss.backward()
            optimizer.step()
            initial = initial if initial is not None else loss.item()
        assert loss.item() < 0.05 * initial

    def test_state_dict_roundtrip(self):
        param = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([param], lr=0.01)
        param.grad = np.ones(2)
        optimizer.step()
        state = optimizer.state_dict()
        fresh = Adam([param], lr=0.5)
        fresh.load_state_dict(state)
        assert fresh.lr == pytest.approx(0.01)
        assert fresh._step_count == 1


class TestSchedulers:
    def _optimizer(self):
        return SGD([Tensor(np.ones(1), requires_grad=True)], lr=1.0)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        optimizer = self._optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.25)

    def test_cosine_annealing_endpoints(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, eta_min=0.1)
        values = [scheduler.step() for _ in range(10)]
        assert values[-1] == pytest.approx(0.1, abs=1e-9)
        assert values[0] < 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), total_epochs=0)
