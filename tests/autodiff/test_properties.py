"""Property-based tests (hypothesis) for the autodiff core.

These check algebraic invariants of the tape — linearity of gradients,
consistency with NumPy forward results, adjoint correctness of the spectral
op — on randomly generated shapes and values.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import functional as F
from repro.autodiff.spectral import spectral_conv2d
from repro.autodiff.tensor import Tensor, unbroadcast

_settings = settings(max_examples=25, deadline=None)

finite_floats = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=5, dims=2):
    shape = st.tuples(*([st.integers(1, max_side)] * dims))
    return shape.flatmap(
        lambda s: hnp.arrays(np.float64, s, elements=finite_floats)
    )


class TestAlgebraicProperties:
    @_settings
    @given(small_arrays())
    def test_forward_matches_numpy(self, array):
        tensor = Tensor(array)
        np.testing.assert_allclose((tensor * 2 + 1).data, array * 2 + 1, rtol=1e-12)

    @_settings
    @given(small_arrays())
    def test_sum_gradient_is_ones(self, array):
        tensor = Tensor(array.copy(), requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(array))

    @_settings
    @given(small_arrays(), st.floats(0.1, 3.0))
    def test_gradient_scales_linearly(self, array, scale):
        first = Tensor(array.copy(), requires_grad=True)
        (first * 1.0).sum().backward()
        second = Tensor(array.copy(), requires_grad=True)
        (second * scale).sum().backward()
        np.testing.assert_allclose(second.grad, scale * first.grad, rtol=1e-9)

    @_settings
    @given(small_arrays())
    def test_softmax_is_a_probability_distribution(self, array):
        out = F.softmax(Tensor(array), axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), rtol=1e-6)

    @_settings
    @given(small_arrays())
    def test_mse_loss_non_negative_and_zero_on_self(self, array):
        tensor = Tensor(array)
        assert F.mse_loss(tensor, Tensor(array.copy())).item() <= 1e-12
        assert F.mse_loss(tensor, Tensor(array + 1.0)).item() >= 0.0

    @_settings
    @given(
        hnp.arrays(np.float64, (3, 4), elements=finite_floats),
        hnp.arrays(np.float64, (4,), elements=finite_floats),
    )
    def test_unbroadcast_inverts_broadcasting(self, big, small):
        grad = np.ones_like(big)
        reduced = unbroadcast(grad, small.shape)
        assert reduced.shape == small.shape
        np.testing.assert_allclose(reduced, np.full(small.shape, big.shape[0]))


class TestSpectralAdjointProperty:
    @_settings
    @given(st.integers(0, 2 ** 31 - 1))
    def test_adjoint_identity(self, seed):
        """<A x, y> == <x, A^T y> for the spectral conv as a linear map in x."""
        rng = np.random.default_rng(seed)
        modes = 2
        wr = rng.standard_normal((2, 1, 1, modes, modes)) * 0.3
        wi = rng.standard_normal((2, 1, 1, modes, modes)) * 0.3
        x = rng.standard_normal((1, 1, 6, 6))
        y = rng.standard_normal((1, 1, 6, 6))

        xt = Tensor(x.copy(), requires_grad=True)
        out = spectral_conv2d(xt, Tensor(wr), Tensor(wi), modes, modes)
        forward_inner = float((out.data * y).sum())
        out.backward(y)
        adjoint_inner = float((x * xt.grad).sum())
        np.testing.assert_allclose(forward_inner, adjoint_inner, rtol=1e-8, atol=1e-10)
