"""Gradient and behaviour tests for the fused spectral convolution op."""

import numpy as np
import pytest

from repro.autodiff.spectral import fft_frequencies, spectral_conv2d
from repro.autodiff.tensor import Tensor
from tests.conftest import assert_gradients_close, numerical_gradient


def _random_weights(rng, in_channels, out_channels, modes):
    shape = (2, in_channels, out_channels, modes, modes)
    return rng.standard_normal(shape) * 0.2, rng.standard_normal(shape) * 0.2


class TestSpectralConv2d:
    def test_output_shape(self, rng):
        wr, wi = _random_weights(rng, 3, 5, 3)
        x = Tensor(rng.standard_normal((2, 3, 10, 10)))
        out = spectral_conv2d(x, Tensor(wr), Tensor(wi), 3, 3)
        assert out.shape == (2, 5, 10, 10)

    def test_rejects_bad_weight_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        with pytest.raises(ValueError):
            spectral_conv2d(x, Tensor(np.zeros((2, 3, 3, 2, 2))), Tensor(np.zeros((2, 3, 3, 2, 2))), 2, 2)

    def test_rejects_too_many_modes(self, rng):
        wr, wi = _random_weights(rng, 1, 1, 5)
        x = Tensor(rng.standard_normal((1, 1, 8, 8)))
        with pytest.raises(ValueError):
            spectral_conv2d(x, Tensor(wr), Tensor(wi), 5, 5)

    def test_linear_in_input(self, rng):
        wr, wi = _random_weights(rng, 2, 2, 2)
        a = rng.standard_normal((1, 2, 8, 8))
        b = rng.standard_normal((1, 2, 8, 8))
        out_sum = spectral_conv2d(Tensor(a + b), Tensor(wr), Tensor(wi), 2, 2).data
        out_a = spectral_conv2d(Tensor(a), Tensor(wr), Tensor(wi), 2, 2).data
        out_b = spectral_conv2d(Tensor(b), Tensor(wr), Tensor(wi), 2, 2).data
        np.testing.assert_allclose(out_sum, out_a + out_b, atol=1e-10)

    def test_constant_input_excites_only_dc_mode(self, rng):
        wr, wi = _random_weights(rng, 1, 1, 2)
        x = np.full((1, 1, 8, 8), 2.0)
        out = spectral_conv2d(Tensor(x), Tensor(wr), Tensor(wi), 2, 2).data
        # A constant field has spectral content only at the DC bin, so the
        # output must be spatially constant as well.
        assert np.abs(out - out.mean()).max() < 1e-10

    def test_gradcheck(self, rng):
        x = rng.standard_normal((2, 2, 8, 8))
        wr, wi = _random_weights(rng, 2, 3, 2)
        xt = Tensor(x.copy(), requires_grad=True)
        wrt = Tensor(wr.copy(), requires_grad=True)
        wit = Tensor(wi.copy(), requires_grad=True)
        (spectral_conv2d(xt, wrt, wit, 2, 2) ** 2).mean().backward()

        def scalar():
            return float((spectral_conv2d(Tensor(x), Tensor(wr), Tensor(wi), 2, 2) ** 2).mean().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x))
        assert_gradients_close(wrt.grad, numerical_gradient(scalar, wr))
        assert_gradients_close(wit.grad, numerical_gradient(scalar, wi))

    def test_resolution_invariance_of_smooth_fields(self, rng):
        """The same spectral weights applied at two resolutions agree on smooth input."""
        wr, wi = _random_weights(rng, 1, 1, 3)
        xs_lo = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        xs_hi = np.linspace(0, 2 * np.pi, 32, endpoint=False)
        field_lo = np.sin(xs_lo)[None, :] * np.cos(xs_lo)[:, None]
        field_hi = np.sin(xs_hi)[None, :] * np.cos(xs_hi)[:, None]
        out_lo = spectral_conv2d(Tensor(field_lo[None, None]), Tensor(wr), Tensor(wi), 3, 3).data
        out_hi = spectral_conv2d(Tensor(field_hi[None, None]), Tensor(wr), Tensor(wi), 3, 3).data
        # Compare at the shared sample locations (every other point of the fine grid).
        np.testing.assert_allclose(out_lo[0, 0], out_hi[0, 0, ::2, ::2], atol=0.3)

    def test_fft_frequencies_shapes(self):
        rows, cols = fft_frequencies(8, 6)
        assert len(rows) == 8 and len(cols) == 6
        assert rows[0] == 0
