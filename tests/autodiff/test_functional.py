"""Tests for the composite functions (activations, losses, softmax...)."""

import numpy as np
import pytest
from scipy import special

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from tests.conftest import assert_gradients_close, numerical_gradient


class TestActivations:
    def test_gelu_matches_reference(self, rng):
        x = rng.standard_normal((100,))
        expected = 0.5 * x * (1 + special.erf(x / np.sqrt(2)))
        np.testing.assert_allclose(F.gelu(Tensor(x)).data, expected, rtol=1e-6)

    def test_gelu_tanh_approximation_close_to_exact(self, rng):
        x = rng.standard_normal((200,))
        exact = F.gelu(Tensor(x)).data
        approx = F.gelu(Tensor(x), approximate=True).data
        assert np.abs(exact - approx).max() < 5e-3

    def test_gelu_gradcheck(self, rng):
        x = rng.standard_normal((4, 5))
        xt = Tensor(x.copy(), requires_grad=True)
        (F.gelu(xt) ** 2).mean().backward()

        def scalar():
            return float((F.gelu(Tensor(x)) ** 2).mean().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x))

    def test_relu_and_leaky_relu(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(F.relu(x).data, [0.0, 0.0, 3.0])
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.2, 0.0, 3.0])

    def test_softplus_positive_and_close_to_relu_for_large_input(self):
        x = Tensor(np.array([-30.0, 0.0, 30.0]))
        out = F.softplus(x).data
        assert (out >= 0).all()
        assert out[2] == pytest.approx(30.0, abs=1e-6)

    def test_sigmoid_range(self, rng):
        out = F.sigmoid(Tensor(rng.standard_normal(50) * 5)).data
        assert (out > 0).all() and (out < 1).all()


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((6, 9))), axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(6), rtol=1e-6)

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((3, 4))
        a = F.softmax(Tensor(x), axis=-1).data
        b = F.softmax(Tensor(x + 100.0), axis=-1).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_log_softmax_consistency(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), rtol=1e-5
        )

    def test_softmax_gradcheck(self, rng):
        x = rng.standard_normal((2, 5))
        xt = Tensor(x.copy(), requires_grad=True)
        (F.softmax(xt, axis=-1) ** 2).sum().backward()

        def scalar():
            return float((F.softmax(Tensor(x), axis=-1) ** 2).sum().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x))


class TestLossesAndNorm:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = Tensor(np.array([1.0, 1.0, 1.0]))
        assert F.mse_loss(pred, target).item() == pytest.approx(5.0 / 3.0)

    def test_l1_loss_value(self):
        pred = Tensor(np.array([1.0, -2.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert F.l1_loss(pred, target).item() == pytest.approx(1.5)

    def test_relative_l2_zero_for_exact_prediction(self, rng):
        x = rng.standard_normal((4, 2, 3, 3))
        assert F.relative_l2_loss(Tensor(x), Tensor(x.copy())).item() < 1e-6

    def test_huber_quadratic_then_linear(self):
        pred = Tensor(np.array([0.5, 3.0]))
        target = Tensor(np.zeros(2))
        loss = F.huber_loss(pred, target, delta=1.0).item()
        assert loss == pytest.approx((0.5 * 0.25 + (0.5 + 2.0)) / 2)

    def test_mse_gradcheck(self, rng):
        pred = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 4))
        pt = Tensor(pred.copy(), requires_grad=True)
        F.mse_loss(pt, Tensor(target)).backward()
        np.testing.assert_allclose(pt.grad, 2 * (pred - target) / pred.size, rtol=1e-5)

    def test_layer_norm_statistics(self, rng):
        x = rng.standard_normal((4, 10)) * 5 + 3
        out = F.layer_norm(Tensor(x), normalized_axes=(1,)).data
        np.testing.assert_allclose(out.mean(axis=1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=1), np.ones(4), atol=1e-2)

    def test_dropout_train_and_eval(self, rng):
        x = Tensor(np.ones((1000,)))
        dropped = F.dropout(x, p=0.5, training=True, rng=rng).data
        assert dropped.mean() == pytest.approx(1.0, abs=0.15)
        np.testing.assert_allclose(F.dropout(x, p=0.5, training=False).data, x.data)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.0)
