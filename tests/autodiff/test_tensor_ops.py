"""Gradient and semantics tests for the elementwise / reduction Tensor ops."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, no_grad, is_grad_enabled, unbroadcast
from tests.conftest import assert_gradients_close, numerical_gradient


def _check_unary(op_name, data, tolerance=1e-6, **kwargs):
    base = data.astype(np.float64)
    tensor = Tensor(base.copy(), requires_grad=True)
    out = getattr(tensor, op_name)(**kwargs)
    (out ** 2).mean().backward()

    def scalar():
        fresh = Tensor(base)
        return float((getattr(fresh, op_name)(**kwargs) ** 2).mean().data)

    numeric = numerical_gradient(scalar, base)
    assert_gradients_close(tensor.grad, numeric, tolerance)


class TestElementwiseGradients:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.standard_normal((3, 4)).astype(np.float64), requires_grad=True)
        b = Tensor(rng.standard_normal((4,)).astype(np.float64), requires_grad=True)
        ((a + b) ** 2).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, (2 * (a.data + b.data)).sum(axis=0), rtol=1e-10)

    def test_mul_gradients(self, rng):
        base_a = rng.standard_normal((2, 5)).astype(np.float64)
        base_b = rng.standard_normal((2, 5)).astype(np.float64)
        a = Tensor(base_a.copy(), requires_grad=True)
        b = Tensor(base_b.copy(), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, base_b)
        np.testing.assert_allclose(b.grad, base_a)

    def test_div_gradient(self, rng):
        base = rng.uniform(0.5, 2.0, (3, 3))
        tensor = Tensor(base.copy(), requires_grad=True)
        (1.0 / tensor).sum().backward()
        np.testing.assert_allclose(tensor.grad, -1.0 / base ** 2, rtol=1e-10)

    def test_pow_gradient(self, rng):
        base = rng.uniform(0.5, 2.0, (4,))
        tensor = Tensor(base.copy(), requires_grad=True)
        (tensor ** 3).sum().backward()
        np.testing.assert_allclose(tensor.grad, 3 * base ** 2, rtol=1e-10)

    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "erf", "abs", "relu"])
    def test_unary_ops_match_numerical_gradient(self, rng, op):
        data = rng.uniform(0.3, 1.5, (3, 4))
        _check_unary(op, data)

    def test_maximum_gradient_routing(self, rng):
        base_a = np.array([1.0, 5.0, -2.0])
        base_b = np.array([2.0, 3.0, -1.0])
        a = Tensor(base_a.copy(), requires_grad=True)
        b = Tensor(base_b.copy(), requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0, 1.0])

    def test_clip_gradient(self):
        base = np.array([-2.0, 0.5, 2.0])
        tensor = Tensor(base.copy(), requires_grad=True)
        tensor.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        base = rng.standard_normal((2, 3, 4))
        tensor = Tensor(base.copy(), requires_grad=True)
        out = tensor.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(base))

    def test_mean_gradient(self, rng):
        base = rng.standard_normal((3, 5))
        tensor = Tensor(base.copy(), requires_grad=True)
        tensor.mean().backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(base, 1.0 / base.size))

    def test_var_matches_numpy(self, rng):
        base = rng.standard_normal((4, 6))
        tensor = Tensor(base)
        np.testing.assert_allclose(tensor.var(axis=1).data, base.var(axis=1), rtol=1e-6)

    def test_max_reduction_value_and_gradient(self):
        base = np.array([[1.0, 3.0], [2.0, 0.5]])
        tensor = Tensor(base.copy(), requires_grad=True)
        out = tensor.max(axis=1)
        np.testing.assert_allclose(out.data, [3.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_min_is_negated_max(self, rng):
        base = rng.standard_normal((5, 5))
        np.testing.assert_allclose(Tensor(base).min(axis=0).data, base.min(axis=0), rtol=1e-6)

    def test_matmul_gradcheck(self, rng):
        base_a = rng.standard_normal((3, 4))
        base_b = rng.standard_normal((4, 2))
        a = Tensor(base_a.copy(), requires_grad=True)
        b = Tensor(base_b.copy(), requires_grad=True)
        ((a @ b) ** 2).mean().backward()

        def scalar():
            return float(((Tensor(base_a) @ Tensor(base_b)) ** 2).mean().data)

        assert_gradients_close(a.grad, numerical_gradient(scalar, base_a))
        assert_gradients_close(b.grad, numerical_gradient(scalar, base_b))

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestGraphMechanics:
    def test_backward_requires_scalar_without_gradient(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (tensor * 2).backward()

    def test_gradient_accumulates_across_uses(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        out = tensor * 3 + tensor * 4
        out.backward()
        np.testing.assert_allclose(tensor.grad, [7.0])

    def test_no_grad_disables_tape(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = tensor * 2
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach_stops_gradient(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        out = (tensor.detach() * 5).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        tensor = Tensor(np.ones(2), requires_grad=True)
        (tensor * 2).sum().backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None

    def test_unbroadcast_sums_leading_and_singleton_axes(self):
        grad = np.ones((5, 3, 4))
        reduced = unbroadcast(grad, (3, 1))
        assert reduced.shape == (3, 1)
        np.testing.assert_allclose(reduced, np.full((3, 1), 20.0))

    def test_repr_mentions_shape(self):
        assert "shape=(2, 2)" in repr(Tensor(np.zeros((2, 2))))
