"""Gradient checks for convolution, pooling and bilinear resampling."""

import numpy as np
import pytest

from repro.autodiff.conv import avg_pool2d, bilinear_resize, conv2d, max_pool2d, _interp_matrix
from repro.autodiff.tensor import Tensor
from tests.conftest import assert_gradients_close, numerical_gradient


class TestConv2d:
    def test_output_shape_with_stride_and_padding(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 9, 9)))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)))
        out = conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 5, 5)

    def test_matches_direct_computation(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        w = rng.standard_normal((1, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=0).data
        expected = np.zeros((1, 1, 2, 2))
        for i in range(2):
            for j in range(2):
                expected[0, 0, i, j] = (x[0, 0, i:i + 3, j:j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 4, 3, 3))))

    def test_gradcheck_all_inputs(self, rng):
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(b.copy(), requires_grad=True)
        (conv2d(xt, wt, bt, stride=1, padding=1) ** 2).mean().backward()

        def scalar():
            return float((conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1) ** 2).mean().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x))
        assert_gradients_close(wt.grad, numerical_gradient(scalar, w))
        assert_gradients_close(bt.grad, numerical_gradient(scalar, b))

    def test_gradcheck_strided(self, rng):
        x = rng.standard_normal((1, 2, 7, 7))
        w = rng.standard_normal((2, 2, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        (conv2d(xt, wt, stride=2, padding=1) ** 2).mean().backward()

        def scalar():
            return float((conv2d(Tensor(x), Tensor(w), stride=2, padding=1) ** 2).mean().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x))
        assert_gradients_close(wt.grad, numerical_gradient(scalar, w))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        xt = Tensor(x.copy(), requires_grad=True)
        max_pool2d(xt, 2).sum().backward()
        expected = np.zeros_like(x)
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1.0
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1.0
        np.testing.assert_allclose(xt.grad, expected)

    def test_avg_pool_values_and_gradient(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        xt = Tensor(x.copy(), requires_grad=True)
        out = avg_pool2d(xt, 2)
        np.testing.assert_allclose(
            out.data[0, 0, 0, 0], x[0, 0, :2, :2].mean(), rtol=1e-6
        )
        out.sum().backward()
        np.testing.assert_allclose(xt.grad, np.full_like(x, 0.25))

    def test_max_pool_gradcheck(self, rng):
        x = rng.standard_normal((1, 1, 6, 6)) * 3
        xt = Tensor(x.copy(), requires_grad=True)
        (max_pool2d(xt, 2) ** 2).mean().backward()

        def scalar():
            return float((max_pool2d(Tensor(x), 2) ** 2).mean().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x), tolerance=1e-4)


class TestBilinearResize:
    def test_identity_when_same_size(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        np.testing.assert_allclose(bilinear_resize(Tensor(x), (5, 5)).data, x, atol=1e-12)

    def test_constant_field_preserved(self):
        x = np.full((1, 1, 4, 4), 3.7)
        out = bilinear_resize(Tensor(x), (9, 7)).data
        np.testing.assert_allclose(out, 3.7, rtol=1e-6)

    def test_interp_matrix_rows_sum_to_one(self):
        matrix = _interp_matrix(10, 4, np.float64)
        np.testing.assert_allclose(matrix.sum(axis=1), np.ones(10), rtol=1e-12)

    def test_gradcheck(self, rng):
        x = rng.standard_normal((1, 2, 4, 5))
        xt = Tensor(x.copy(), requires_grad=True)
        (bilinear_resize(xt, (7, 9)) ** 2).mean().backward()

        def scalar():
            return float((bilinear_resize(Tensor(x), (7, 9)) ** 2).mean().data)

        assert_gradients_close(xt.grad, numerical_gradient(scalar, x))

    def test_downsample_then_upsample_smooths(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        down = bilinear_resize(Tensor(x), (4, 4))
        up = bilinear_resize(down, (8, 8))
        assert up.data.std() <= x.std() + 1e-9
