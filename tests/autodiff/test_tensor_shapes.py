"""Tests for the shape-manipulation operations (reshape, transpose, indexing...)."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        base = rng.standard_normal((2, 6))
        tensor = Tensor(base.copy(), requires_grad=True)
        tensor.reshape(3, 4).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(base))

    def test_flatten_from_dim(self, rng):
        tensor = Tensor(rng.standard_normal((2, 3, 4)))
        assert tensor.flatten(start_dim=1).shape == (2, 12)

    def test_transpose_default_reverses_axes(self, rng):
        tensor = Tensor(rng.standard_normal((2, 3, 4)))
        assert tensor.transpose().shape == (4, 3, 2)

    def test_transpose_gradient_inverse_permutation(self, rng):
        base = rng.standard_normal((2, 3, 4))
        tensor = Tensor(base.copy(), requires_grad=True)
        out = tensor.transpose(1, 2, 0)
        assert out.shape == (3, 4, 2)
        (out * 2).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(base, 2.0))

    def test_swapaxes(self, rng):
        tensor = Tensor(rng.standard_normal((2, 3, 4)))
        assert tensor.swapaxes(0, 2).shape == (4, 3, 2)

    def test_squeeze_unsqueeze_gradients(self, rng):
        base = rng.standard_normal((3, 1, 4))
        tensor = Tensor(base.copy(), requires_grad=True)
        tensor.squeeze(1).unsqueeze(0).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(base))

    def test_broadcast_to_gradient_sums(self):
        tensor = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        tensor.broadcast_to((3, 2)).sum().backward()
        np.testing.assert_allclose(tensor.grad, [3.0, 3.0])

    def test_pad_and_gradient(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = tensor.pad(((1, 1), (0, 2)), constant_value=5.0)
        assert padded.shape == (4, 4)
        assert padded.data[0, 0] == 5.0
        padded.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones((2, 2)))

    def test_getitem_slice_gradient(self, rng):
        base = rng.standard_normal((4, 4))
        tensor = Tensor(base.copy(), requires_grad=True)
        tensor[1:3, ::2].sum().backward()
        expected = np.zeros_like(base)
        expected[1:3, ::2] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)

    def test_getitem_integer_array_accumulates(self):
        tensor = Tensor(np.arange(5.0), requires_grad=True)
        tensor[np.array([0, 0, 3])].sum().backward()
        np.testing.assert_allclose(tensor.grad, [2.0, 0.0, 0.0, 1.0, 0.0])

    def test_cat_values_and_gradients(self, rng):
        first = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        second = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        out = Tensor.cat([first, second], axis=1)
        assert out.shape == (2, 5)
        (out * 3).sum().backward()
        np.testing.assert_allclose(first.grad, np.full((2, 3), 3.0))
        np.testing.assert_allclose(second.grad, np.full((2, 2), 3.0))

    def test_stack(self, rng):
        parts = [Tensor(rng.standard_normal((3,))) for _ in range(4)]
        assert Tensor.stack(parts, axis=0).shape == (4, 3)

    def test_constructors(self):
        assert Tensor.zeros((2, 2)).data.sum() == 0
        assert Tensor.ones((2, 2)).data.sum() == 4
        assert Tensor.randn(3, 3, rng=np.random.default_rng(0)).shape == (3, 3)

    def test_astype_changes_dtype(self):
        tensor = Tensor(np.ones(3, dtype=np.float64))
        assert tensor.astype(np.float32).dtype == np.float32

    def test_len_and_item(self):
        assert len(Tensor(np.zeros((7, 2)))) == 7
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
