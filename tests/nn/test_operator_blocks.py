"""Tests for the operator building blocks: spectral layers, U-Net, attention."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn import (
    FourierLayer,
    LinearAttention,
    SpatialChannelAttention,
    SpectralConv2d,
    UNet2d,
)


class TestSpectralLayer:
    def test_spectral_conv_layer_shapes(self, rng):
        layer = SpectralConv2d(3, 5, modes1=4, modes2=4, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 12, 12))))
        assert out.shape == (2, 5, 12, 12)

    def test_fourier_layer_preserves_channels(self, rng):
        layer = FourierLayer(8, 3, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 8, 10, 10))))
        assert out.shape == (1, 8, 10, 10)

    def test_fourier_layer_no_activation_can_be_negative_and_linear_tail(self, rng):
        layer = FourierLayer(4, 2, 2, activation=False, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 4, 8, 8)))).data
        assert out.min() < 0  # GELU would squash large negatives toward zero

    def test_fourier_layer_mesh_invariance(self, rng):
        """The same layer evaluated at two resolutions agrees on a smooth field."""
        layer = FourierLayer(1, 3, 3, activation=False, rng=np.random.default_rng(0))
        coarse = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        fine = np.linspace(0, 2 * np.pi, 32, endpoint=False)
        field_coarse = np.sin(coarse)[None, :] * np.cos(2 * coarse)[:, None]
        field_fine = np.sin(fine)[None, :] * np.cos(2 * fine)[:, None]
        out_coarse = layer(Tensor(field_coarse[None, None].astype(np.float32))).data
        out_fine = layer(Tensor(field_fine[None, None].astype(np.float32))).data
        np.testing.assert_allclose(out_coarse[0, 0], out_fine[0, 0, ::2, ::2], atol=0.35)

    def test_parameter_count(self, rng):
        layer = SpectralConv2d(2, 3, 4, 5, rng=rng)
        assert layer.num_parameters() == 2 * (2 * 2 * 3 * 4 * 5)


class TestUNet:
    def test_output_shape_matches_input(self, rng):
        unet = UNet2d(4, 4, base_channels=4, levels=2, rng=rng)
        out = unet(Tensor(rng.standard_normal((2, 4, 12, 12))))
        assert out.shape == (2, 4, 12, 12)

    def test_handles_non_power_of_two_grids(self, rng):
        unet = UNet2d(2, 2, base_channels=4, levels=3, rng=rng)
        out = unet(Tensor(rng.standard_normal((1, 2, 10, 14))))
        assert out.shape == (1, 2, 10, 14)

    def test_channel_change(self, rng):
        unet = UNet2d(3, 7, base_channels=4, levels=1, rng=rng)
        assert unet(Tensor(rng.standard_normal((1, 3, 8, 8)))).shape == (1, 7, 8, 8)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            UNet2d(2, 2, levels=0)

    def test_gradients_flow_to_all_parameters(self, rng):
        unet = UNet2d(2, 2, base_channels=4, levels=2, rng=rng)
        out = unet(Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32)))
        (out ** 2).mean().backward()
        missing = [name for name, p in unet.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradients: {missing}"


class TestAttention:
    def test_softmax_attention_shape_and_residual(self, rng):
        block = SpatialChannelAttention(6, embed_dim=4, rng=rng)
        x = rng.standard_normal((2, 6, 7, 7)).astype(np.float32)
        out = block(Tensor(x))
        assert out.shape == (2, 6, 7, 7)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            SpatialChannelAttention(6)(Tensor(np.zeros((1, 3, 4, 4))))

    def test_non_residual_mode(self, rng):
        block = SpatialChannelAttention(4, residual=False, rng=rng)
        x = np.zeros((1, 4, 5, 5), dtype=np.float32)
        out = block(Tensor(x)).data
        assert out.shape == (1, 4, 5, 5)

    def test_linear_attention_shape(self, rng):
        block = LinearAttention(6, embed_dim=4, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 6, 9, 9)).astype(np.float32)))
        assert out.shape == (2, 6, 9, 9)

    def test_attention_is_permutation_sensitive_globally(self, rng):
        """Unlike a 1x1 conv alone, attention output at one location depends on others."""
        block = SpatialChannelAttention(3, embed_dim=3, residual=False, rng=np.random.default_rng(2))
        x = rng.standard_normal((1, 3, 6, 6)).astype(np.float32)
        modified = x.copy()
        modified[0, :, 0, 0] += 5.0
        out_base = block(Tensor(x)).data
        out_mod = block(Tensor(modified)).data
        # A far-away cell must change too (global receptive field).
        assert np.abs(out_base[0, :, 5, 5] - out_mod[0, :, 5, 5]).max() > 1e-6

    def test_gradients_flow_through_attention(self, rng):
        block = SpatialChannelAttention(4, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32), requires_grad=True)
        (block(x) ** 2).mean().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())
