"""Tests for the Module container machinery."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, ReLU


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8)
        self.second = Linear(8, 2)
        self.scale = Parameter(np.ones(1))
        self.register_buffer("offset", np.array([0.5]))

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestModule:
    def test_parameter_registration(self):
        model = _ToyModel()
        names = dict(model.named_parameters())
        assert "scale" in names
        assert "first.weight" in names and "second.bias" in names
        assert len(model.parameters()) == 5

    def test_num_parameters(self):
        model = _ToyModel()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.num_parameters() == expected

    def test_state_dict_roundtrip(self):
        model = _ToyModel()
        other = _ToyModel()
        other.load_state_dict(model.state_dict())
        for (name_a, param_a), (name_b, param_b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_state_dict_includes_buffers(self):
        assert "offset" in _ToyModel().state_dict()

    def test_load_state_dict_missing_key_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_save_and_load(self, tmp_path):
        model = _ToyModel()
        path = tmp_path / "model.npz"
        model.save(str(path))
        other = _ToyModel()
        other.load(str(path))
        np.testing.assert_allclose(
            model.first.weight.data, other.first.weight.data
        )

    def test_train_eval_propagates(self):
        model = _ToyModel()
        model.eval()
        assert not model.training and not model.first.training
        model.train()
        assert model.training and model.second.training

    def test_zero_grad(self):
        model = _ToyModel()
        out = model(Tensor(np.random.default_rng(0).standard_normal((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_astype(self):
        model = _ToyModel().astype(np.float64)
        assert all(p.dtype == np.float64 for p in model.parameters())

    def test_copy_from(self):
        source, destination = _ToyModel(), _ToyModel()
        destination.copy_from(source)
        np.testing.assert_allclose(source.scale.data, destination.scale.data)


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 5), ReLU(), Linear(5, 2))
        out = model(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_sequential_append_registers_parameters(self):
        model = Sequential(Linear(2, 2))
        before = len(model.parameters())
        model.append(Linear(2, 2))
        assert len(model.parameters()) == before + 2

    def test_module_list_registration_and_iteration(self):
        layers = ModuleList(Linear(2, 2) for _ in range(3))
        assert len(layers) == 3
        assert len(layers[0].parameters()) == 2
        assert sum(1 for _ in layers) == 3

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(Tensor(np.ones((1, 2))))
