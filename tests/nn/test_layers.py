"""Tests for linear, convolutional, normalisation and activation layers."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GELU,
    Identity,
    InstanceNorm2d,
    LayerNorm,
    LeakyReLU,
    Linear,
    MLP,
    PointwiseConv2d,
    ReLU,
    Sigmoid,
    Tanh,
)


class TestLinearAndMLP:
    def test_linear_shapes_and_values(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_linear_without_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_trains_toward_target(self, rng):
        layer = Linear(2, 1, rng=rng)
        x = rng.standard_normal((64, 2))
        target = x @ np.array([[2.0], [-1.0]]) + 0.5
        for _ in range(200):
            out = layer(Tensor(x))
            loss = ((out - Tensor(target)) ** 2).mean()
            layer.zero_grad()
            loss.backward()
            for param in layer.parameters():
                param.data = param.data - 0.1 * param.grad
        assert loss.item() < 1e-3

    def test_mlp_depth_and_activation(self, rng):
        mlp = MLP([3, 16, 16, 2], rng=rng)
        out = mlp(Tensor(rng.standard_normal((7, 3))))
        assert out.shape == (7, 2)
        assert len(mlp.layers) == 3

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestConvLayers:
    def test_conv2d_layer_shape(self, rng):
        layer = Conv2d(3, 6, kernel_size=3, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)

    def test_pointwise_equivalent_to_1x1_conv(self, rng):
        x = rng.standard_normal((2, 3, 5, 5))
        pointwise = PointwiseConv2d(3, 4, rng=np.random.default_rng(0))
        conv = Conv2d(3, 4, kernel_size=1, rng=np.random.default_rng(1))
        conv.weight.data = pointwise.weight.data.reshape(4, 3, 1, 1).copy()
        conv.bias.data = pointwise.bias.data.copy()
        np.testing.assert_allclose(
            pointwise(Tensor(x)).data, conv(Tensor(x)).data, rtol=1e-4, atol=1e-5
        )

    def test_pointwise_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            PointwiseConv2d(3, 4)(Tensor(rng.standard_normal((1, 2, 4, 4))))

    def test_pointwise_is_local(self, rng):
        """A 1x1 convolution must not mix neighbouring grid cells."""
        layer = PointwiseConv2d(2, 2, rng=rng)
        x = np.zeros((1, 2, 6, 6))
        x[0, :, 2, 3] = 1.0
        out = layer(Tensor(x)).data - layer(Tensor(np.zeros_like(x))).data
        mask = np.zeros((6, 6), dtype=bool)
        mask[2, 3] = True
        assert np.abs(out[0, :, ~mask]).max() < 1e-12


class TestNormalisation:
    def test_batchnorm_normalises_in_training(self, rng):
        layer = BatchNorm2d(3)
        x = rng.standard_normal((8, 3, 6, 6)) * 4 + 2
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = rng.standard_normal((16, 2, 4, 4)) + 3.0
        for _ in range(10):
            layer(Tensor(x))
        layer.eval()
        out = layer(Tensor(x)).data
        assert abs(out.mean()) < 0.5

    def test_batchnorm_shape_check(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(rng.standard_normal((2, 4, 5, 5))))

    def test_instance_norm(self, rng):
        layer = InstanceNorm2d(3)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8)) * 7 + 1)).data
        np.testing.assert_allclose(out.mean(axis=(2, 3)), np.zeros((2, 3)), atol=1e-5)

    def test_layer_norm_layer(self, rng):
        layer = LayerNorm((6,))
        out = layer(Tensor(rng.standard_normal((4, 6)) * 3)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)


class TestActivationLayers:
    @pytest.mark.parametrize(
        "layer_cls", [ReLU, GELU, Tanh, Sigmoid, LeakyReLU, Identity]
    )
    def test_activation_preserves_shape(self, rng, layer_cls):
        layer = layer_cls()
        x = rng.standard_normal((3, 4, 5))
        assert layer(Tensor(x)).shape == x.shape

    def test_identity_is_exact(self, rng):
        x = rng.standard_normal((5,))
        np.testing.assert_allclose(Identity()(Tensor(x)).data, x)
