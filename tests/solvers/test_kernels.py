"""Equivalence and tolerance suite for the SPD kernel tier.

Every fast variant the kernel tier exposes — direct CSC assembly, the
Cholesky/LU factorization selection, the float32 single-sweep mode and the
coarse-grid CG warm start — must stay within its documented tolerance of
the float64-LU reference answer.  These tests pin each bound:

* direct CSC assembly is **bitwise** equal to the historical COO pipeline;
* ``factorization="cholesky"`` matches ``"lu"`` bitwise when CHOLMOD is
  absent (the fallback is the identical splu call) and to 1e-9 K when it
  is present;
* float32 refined within :data:`FLOAT32_REFINED_BOUND_K`, single-sweep
  within :data:`FLOAT32_SINGLE_SWEEP_BOUND_K`;
* the coarse warm start converges to the direct answer within the CG
  tolerance while starting closer than a cold start.
"""

import numpy as np
import pytest

from repro.solvers import (
    CHOLMOD_AVAILABLE,
    FLOAT32_REFINED_BOUND_K,
    FLOAT32_SINGLE_SWEEP_BOUND_K,
    FVMSolver,
    SOLVER_VERSION,
    SPDFactor,
    TransientFVMSolver,
    factorize,
    resolve_factorization,
    validate_factorization,
)


def _uniform_assignment(chip, total):
    names = chip.flat_block_names()
    return {name: total / len(names) for name in names}


class TestFactorizationSelection:
    def test_validate_normalises_and_rejects(self):
        assert validate_factorization("AUTO") == "auto"
        assert validate_factorization("lu") == "lu"
        with pytest.raises(ValueError, match="unknown factorization"):
            validate_factorization("qr")

    def test_resolution_is_deterministic(self):
        expected = "cholmod" if CHOLMOD_AVAILABLE else "lu"
        assert resolve_factorization("auto") == expected
        assert resolve_factorization("cholesky") == expected
        assert resolve_factorization("lu") == "lu"

    def test_factorize_records_kind_and_fallback(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=8)
        matrix, _, _ = solver._assemble_system(solver.geometry)
        factor = factorize(matrix, "cholesky")
        assert isinstance(factor, SPDFactor)
        assert factor.requested == "cholesky"
        assert factor.kind == resolve_factorization("cholesky")
        assert factor.fallback == (not CHOLMOD_AVAILABLE)
        assert factor.factor_seconds >= 0.0
        lu = factorize(matrix, "lu")
        assert lu.fallback is False
        rhs = np.linspace(1.0, 2.0, matrix.shape[0])
        assert np.abs(factor.solve(rhs) - lu.solve(rhs)).max() < 1e-9

    def test_invalid_knob_rejected_at_construction(self, tiny_chip):
        with pytest.raises(ValueError, match="unknown factorization"):
            FVMSolver(tiny_chip, nx=8, factorization="qr")
        with pytest.raises(ValueError, match="unknown factorization"):
            TransientFVMSolver(tiny_chip, nx=8, factorization="qr")

    def test_solver_version_bumped_for_kernel_tier(self):
        assert SOLVER_VERSION == "3"


class TestCSCAssembly:
    def test_bitwise_equal_to_coo_reference(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=10, cells_per_layer=2)
        matrix, rhs, volumes = solver._assemble_system(solver.geometry)
        legacy, legacy_rhs, legacy_volumes = solver._assemble_system_coo(solver.geometry)
        legacy_csc = legacy.tocsc()
        legacy_csc.sort_indices()
        assert matrix.format == "csc"
        assert np.array_equal(matrix.indptr, legacy_csc.indptr)
        assert np.array_equal(matrix.indices, legacy_csc.indices)
        assert np.array_equal(matrix.data, legacy_csc.data)
        assert np.array_equal(rhs, legacy_rhs)
        assert np.array_equal(volumes, legacy_volumes)

    def test_indices_sorted_and_duplicate_free(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=6, cells_per_layer=1)
        matrix, _, _ = solver._assemble_system(solver.geometry)
        assert matrix.has_sorted_indices
        for column in range(matrix.shape[1]):
            rows = matrix.indices[matrix.indptr[column]:matrix.indptr[column + 1]]
            assert np.all(np.diff(rows) > 0)

    def test_prepared_matrix_is_csc(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=8)
        prepared = solver.prepare()
        assert prepared.matrix.format == "csc"
        assert prepared.factor is not None


class TestKernelEquivalence:
    def test_cholesky_matches_lu(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 30.0)
        lu = FVMSolver(tiny_chip, nx=12, factorization="lu").solve(assignment)
        cholesky = FVMSolver(tiny_chip, nx=12, factorization="cholesky").solve(assignment)
        if CHOLMOD_AVAILABLE:
            # Different elimination arithmetic: agree to the solve tolerance.
            assert np.abs(cholesky.values - lu.values).max() < 1e-9
        else:
            # The fallback is the exact historical splu call: bitwise.
            assert np.array_equal(cholesky.values, lu.values)

    def test_auto_matches_an_explicit_kernel(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 25.0)
        auto = FVMSolver(tiny_chip, nx=12, factorization="auto").solve(assignment)
        explicit_name = "cholesky" if CHOLMOD_AVAILABLE else "lu"
        explicit = FVMSolver(tiny_chip, nx=12, factorization=explicit_name).solve(assignment)
        assert np.array_equal(auto.values, explicit.values)

    def test_transient_euler_factor_uses_selected_kernel(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 20.0)
        lu = TransientFVMSolver(tiny_chip, nx=8, factorization="lu")
        requested = TransientFVMSolver(tiny_chip, nx=8, factorization="cholesky")
        result_lu = lu.solve(assignment, duration_s=0.01, dt_s=0.002)
        result_req = requested.solve(assignment, duration_s=0.01, dt_s=0.002)
        assert lu._factor_cache[1].kind == "lu"
        assert requested._factor_cache[1].kind == resolve_factorization("cholesky")
        if CHOLMOD_AVAILABLE:
            assert np.abs(result_req.snapshots - result_lu.snapshots).max() < 1e-9
        else:
            assert requested._factor_cache[1].fallback
            assert np.array_equal(result_req.snapshots, result_lu.snapshots)

    def test_transient_euler_matrix_stays_csc(self, tiny_chip):
        solver = TransientFVMSolver(tiny_chip, nx=8)
        list(solver.iter_steps(_uniform_assignment(tiny_chip, 10.0), 0.004, 0.002))
        assert solver._steady.prepare().matrix.format == "csc"


class TestFloat32Modes:
    def test_refined_within_documented_bound(self, tiny_chip):
        assignments = [
            _uniform_assignment(tiny_chip, total) for total in (15.0, 25.0, 35.0)
        ]
        reference = FVMSolver(tiny_chip, nx=16).solve_batch(assignments)
        refined = FVMSolver(tiny_chip, nx=16).solve_batch(assignments, dtype="float32")
        worst = max(
            np.abs(r.values - f.values.astype(np.float64)).max()
            for r, f in zip(reference, refined)
        )
        assert worst <= FLOAT32_REFINED_BOUND_K

    def test_single_sweep_within_documented_bound(self, tiny_chip):
        assignments = [
            _uniform_assignment(tiny_chip, total) for total in (15.0, 25.0, 35.0)
        ]
        reference = FVMSolver(tiny_chip, nx=16).solve_batch(assignments)
        single = FVMSolver(tiny_chip, nx=16).solve_batch(
            assignments, dtype="float32", refine=False
        )
        worst = max(
            np.abs(r.values - f.values.astype(np.float64)).max()
            for r, f in zip(reference, single)
        )
        assert worst <= FLOAT32_SINGLE_SWEEP_BOUND_K
        # The single sweep is honest about being coarser than the refined
        # path, but its answers still resolve the field: they must be far
        # closer to the truth than the operator surrogates they feed.
        assert worst < 0.1

    def test_refine_false_requires_float32(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=8)
        with pytest.raises(ValueError, match="single-sweep"):
            solver.solve_batch([_uniform_assignment(tiny_chip, 10.0)], refine=False)

    def test_float64_batch_matches_sequential_solves(self, tiny_chip):
        """The broadcast boundary-RHS add reproduces per-case solves bitwise."""
        assignments = [
            _uniform_assignment(tiny_chip, total) for total in (12.0, 30.0)
        ]
        solver = FVMSolver(tiny_chip, nx=12)
        batched = solver.solve_batch(assignments)
        for assignment, batch_field in zip(assignments, batched):
            single = solver.solve(assignment)
            assert np.array_equal(single.values, batch_field.values)


class TestCoarseWarmStart:
    def test_converges_to_direct_answer(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 30.0)
        direct = FVMSolver(tiny_chip, nx=16).solve(assignment)
        warm = FVMSolver(
            tiny_chip, nx=16, method="cg", coarse_warm_start=2
        ).solve(assignment)
        assert np.abs(warm.values - direct.values).max() < 1e-5

    def test_reduces_cg_iterations(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 30.0)
        cold = FVMSolver(tiny_chip, nx=16, method="cg")
        cold.solve(assignment)
        warm = FVMSolver(tiny_chip, nx=16, method="cg", coarse_warm_start=2)
        warm.solve(assignment)
        assert cold.last_cg_iterations is not None
        assert warm.last_cg_iterations is not None
        assert warm.last_cg_iterations < cold.last_cg_iterations

    def test_factor_must_divide_resolution(self, tiny_chip):
        with pytest.raises(ValueError, match="does not divide"):
            FVMSolver(tiny_chip, nx=15, method="cg", coarse_warm_start=2)
        with pytest.raises(ValueError, match=">= 2"):
            FVMSolver(tiny_chip, nx=16, method="cg", coarse_warm_start=1)

    def test_direct_method_ignores_warm_start(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 20.0)
        plain = FVMSolver(tiny_chip, nx=16).solve(assignment)
        with_knob = FVMSolver(tiny_chip, nx=16, coarse_warm_start=2).solve(assignment)
        assert np.array_equal(plain.values, with_knob.values)
