"""Tests for the transient (backward-Euler) thermal solver extension."""

import numpy as np
import pytest

from repro.solvers import FVMSolver, TransientFVMSolver


def _uniform_assignment(chip, total):
    names = chip.flat_block_names()
    return {name: total / len(names) for name in names}


@pytest.fixture
def transient_solver(tiny_chip):
    return TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1)


class TestTransientSolver:
    def test_argument_validation(self, transient_solver, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 10.0)
        with pytest.raises(ValueError):
            transient_solver.solve(assignment, duration_s=-1.0, dt_s=0.1)
        with pytest.raises(ValueError):
            transient_solver.solve(assignment, duration_s=1.0, dt_s=2.0)
        with pytest.raises(ValueError):
            transient_solver.solve(assignment, duration_s=1.0, dt_s=0.1, store_every=0)
        with pytest.raises(ValueError):
            transient_solver.solve(
                assignment, duration_s=1.0, dt_s=0.5, initial_field=np.zeros((1, 2, 2))
            )

    def test_starts_at_ambient_and_heats_up(self, transient_solver, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 20.0)
        result = transient_solver.solve(assignment, duration_s=0.2, dt_s=0.02)
        ambient = tiny_chip.cooling.ambient_K
        np.testing.assert_allclose(result.snapshots[0], ambient, atol=1e-9)
        peaks = result.peak_history()
        assert peaks[-1] > peaks[1] > ambient
        # Monotone heating towards the steady state under constant power.
        assert np.all(np.diff(peaks) >= -1e-9)

    def test_converges_to_steady_state(self, tiny_chip):
        """After several thermal time constants the transient matches the steady solver."""
        solver = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1)
        assignment = _uniform_assignment(tiny_chip, 15.0)
        tau = solver.thermal_time_constant_estimate()
        result = solver.solve(assignment, duration_s=8 * tau, dt_s=tau / 10, store_every=10)
        steady = FVMSolver(tiny_chip, nx=8, cells_per_layer=1).solve(assignment)
        np.testing.assert_allclose(result.final, steady.values, rtol=2e-3)

    def test_zero_power_stays_at_ambient(self, transient_solver, tiny_chip):
        result = transient_solver.solve({}, duration_s=0.1, dt_s=0.02)
        np.testing.assert_allclose(result.final, tiny_chip.cooling.ambient_K, atol=1e-8)

    def test_cooldown_from_hot_initial_state(self, transient_solver, tiny_chip):
        """A pre-heated die with no power must relax towards ambient."""
        ambient = tiny_chip.cooling.ambient_K
        # Build the correctly shaped initial state from a dry-run grid.
        probe = transient_solver.solve({}, duration_s=0.02, dt_s=0.02)
        hot = np.full(probe.final.shape, ambient + 50.0)
        result = transient_solver.solve({}, duration_s=0.5, dt_s=0.05, initial_field=hot)
        assert result.peak_history()[-1] < ambient + 50.0
        assert np.all(np.diff(result.peak_history()) <= 1e-9)

    def test_time_varying_power_trace(self, transient_solver, tiny_chip):
        """A power step at t=0.1 s must show up as renewed heating."""
        names = tiny_chip.flat_block_names()

        def trace(t):
            scale = 5.0 if t < 0.1 else 30.0
            return {name: scale / len(names) for name in names}

        result = transient_solver.solve(trace, duration_s=0.2, dt_s=0.02)
        peaks = result.peak_history()
        early_slope = peaks[3] - peaks[2]
        late_slope = peaks[7] - peaks[6]
        assert late_slope > early_slope

    def test_snapshot_storage_and_histories(self, transient_solver, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 10.0)
        result = transient_solver.solve(assignment, duration_s=0.2, dt_s=0.02, store_every=2)
        assert len(result.times_s) == len(result.snapshots)
        assert result.times_s[0] == 0.0
        assert result.times_s[-1] == pytest.approx(0.2)
        layer_history = result.layer_history(tiny_chip.power_layer_names[0])
        assert layer_history.shape[0] == len(result.times_s)
        with pytest.raises(KeyError):
            result.layer_history("tim")
        assert result.mean_history()[-1] > result.mean_history()[0]
        assert result.max_K() >= result.mean_history()[-1]

    def test_time_constant_estimate_is_physical(self, transient_solver):
        tau = transient_solver.thermal_time_constant_estimate()
        # Sub-millimetre silicon stacks have millisecond-scale time constants.
        assert 1e-5 < tau < 10.0

    def test_result_is_dt_insensitive_when_resolved(self, tiny_chip):
        """Backward Euler converges: halving dt changes the answer only slightly."""
        solver = TransientFVMSolver(tiny_chip, nx=6, cells_per_layer=1)
        assignment = _uniform_assignment(tiny_chip, 12.0)
        coarse = solver.solve(assignment, duration_s=0.08, dt_s=0.02)
        fine = solver.solve(assignment, duration_s=0.08, dt_s=0.01)
        assert abs(coarse.max_K() - fine.max_K()) < 1.0
