"""Tests for the voxelizer and the steady-state finite-volume solver."""

import numpy as np
import pytest

from repro.solvers import FVMSolver, HotSpotModel, slab_1d_robin, voxelize
from repro.solvers.analytic import poisson_2d_dirichlet_series


def _uniform_assignment(chip, total):
    names = chip.flat_block_names()
    return {name: total / len(names) for name in names}


class TestVoxelize:
    def test_grid_shapes_and_power_conservation(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 30.0)
        grid = voxelize(tiny_chip, assignment, nx=16, cells_per_layer=2)
        assert grid.conductivity.shape == grid.heat_source.shape
        assert grid.conductivity.shape[1:] == (16, 16)
        assert grid.total_power_W() == pytest.approx(30.0, rel=1e-6)

    def test_power_layer_slices_cover_power_layers(self, tiny_chip):
        grid = voxelize(tiny_chip, _uniform_assignment(tiny_chip, 10.0), nx=8)
        assert set(grid.power_layer_slices) == set(tiny_chip.power_layer_names)
        for indices in grid.power_layer_slices.values():
            assert indices

    def test_materials_mapped_correctly(self, tiny_chip):
        grid = voxelize(tiny_chip, _uniform_assignment(tiny_chip, 10.0), nx=8)
        # TIM cells (top of the stack) must carry the TIM conductivity.
        assert grid.conductivity[-1].max() == pytest.approx(4.0)
        assert grid.conductivity[0].max() == pytest.approx(100.0)

    def test_minimum_resolution_enforced(self, tiny_chip):
        with pytest.raises(ValueError):
            voxelize(tiny_chip, {}, nx=1)


class TestFVMSolver:
    def test_no_power_gives_ambient_temperature(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=12)
        field = solver.solve({name: 0.0 for name in tiny_chip.flat_block_names()})
        ambient = tiny_chip.cooling.ambient_K
        np.testing.assert_allclose(field.values, ambient, atol=1e-6)

    def test_temperature_above_ambient_with_power(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=12)
        field = solver.solve(_uniform_assignment(tiny_chip, 30.0))
        assert field.min_K > tiny_chip.cooling.ambient_K
        assert field.max_K > field.min_K

    def test_energy_balance(self, tiny_chip):
        """Heat leaving through the boundaries equals the injected power."""
        total = 25.0
        solver = FVMSolver(tiny_chip, nx=16, cells_per_layer=2)
        field = solver.solve(_uniform_assignment(tiny_chip, total))
        grid = field.grid
        ambient = tiny_chip.cooling.ambient_K
        face_area = grid.dx_m * grid.dy_m
        top_htc = tiny_chip.cooling.effective_top_htc(tiny_chip.die_area_m2)
        half = 0.5 * grid.dz_m[-1] / grid.conductivity[-1]
        top_conductance = face_area / (half + 1.0 / top_htc)
        top_flux = (top_conductance * (field.values[-1] - ambient)).sum()
        bottom_htc = tiny_chip.cooling.secondary_htc
        half_b = 0.5 * grid.dz_m[0] / grid.conductivity[0]
        bottom_conductance = face_area / (half_b + 1.0 / bottom_htc)
        bottom_flux = (bottom_conductance * (field.values[0] - ambient)).sum()
        assert top_flux + bottom_flux == pytest.approx(total, rel=1e-6)

    def test_monotone_in_power(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=10)
        cold = solver.solve(_uniform_assignment(tiny_chip, 10.0))
        hot = solver.solve(_uniform_assignment(tiny_chip, 40.0))
        assert hot.max_K > cold.max_K
        assert hot.mean_K > cold.mean_K

    def test_superposition_of_sources(self, tiny_chip):
        """The steady heat equation is linear: temperature rises superpose."""
        solver = FVMSolver(tiny_chip, nx=10)
        ambient = tiny_chip.cooling.ambient_K
        names = tiny_chip.flat_block_names()
        case_a = {names[0]: 12.0}
        case_b = {names[-1]: 8.0}
        combined = {names[0]: 12.0, names[-1]: 8.0}
        rise_a = solver.solve(case_a).values - ambient
        rise_b = solver.solve(case_b).values - ambient
        rise_ab = solver.solve(combined).values - ambient
        np.testing.assert_allclose(rise_ab, rise_a + rise_b, rtol=1e-6, atol=1e-8)

    def test_hotspot_under_powered_block(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=16)
        field = solver.solve({"core_layer/core": 25.0})
        location = field.hotspot_location()
        # The "core" block occupies the upper half (y in [4, 8] mm).
        assert location["y_mm"] > 4.0

    def test_layer_maps_shape_and_ordering(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=12)
        field = solver.solve(_uniform_assignment(tiny_chip, 20.0))
        maps = field.power_layer_maps()
        assert maps.shape == (2, 12, 12)
        with pytest.raises(KeyError):
            field.layer_map("tim")

    def test_cg_matches_direct(self, tiny_chip):
        assignment = _uniform_assignment(tiny_chip, 15.0)
        direct = FVMSolver(tiny_chip, nx=10, method="direct").solve(assignment)
        iterative = FVMSolver(tiny_chip, nx=10, method="cg").solve(assignment)
        np.testing.assert_allclose(direct.values, iterative.values, rtol=1e-6)

    def test_invalid_method_rejected(self, tiny_chip):
        with pytest.raises(ValueError):
            FVMSolver(tiny_chip, method="magic")

    def test_grid_refinement_converges(self, tiny_chip):
        """Peak temperature changes less and less as the mesh is refined."""
        assignment = _uniform_assignment(tiny_chip, 25.0)
        peaks = [
            FVMSolver(tiny_chip, nx=n, cells_per_layer=2).solve(assignment).max_K
            for n in (8, 16, 32)
        ]
        assert abs(peaks[2] - peaks[1]) < abs(peaks[1] - peaks[0]) + 0.2


class TestAgainstAnalyticSolutions:
    def test_1d_slab_robin_profile(self, tiny_chip):
        """Uniform heating of a wide thin chip reduces to the 1D slab solution."""
        total = 20.0
        solver = FVMSolver(tiny_chip, nx=24, cells_per_layer=4)
        field = solver.solve(_uniform_assignment(tiny_chip, total))
        # Centre column, away from lateral boundaries.
        centre = field.values[:, 12, 12]

        grid = field.grid
        die_area = tiny_chip.die_area_m2
        volumetric = total / (die_area * grid.dz_m.sum())
        z_centres = np.cumsum(grid.dz_m) - grid.dz_m / 2
        # Use an area-weighted effective conductivity (the stack is nearly
        # silicon; the thin TIM layer only shifts the top slightly).
        analytic = slab_1d_robin(
            thickness_m=float(grid.dz_m.sum()),
            conductivity=100.0,
            volumetric_source=volumetric,
            top_htc=tiny_chip.cooling.effective_top_htc(die_area),
            bottom_htc=tiny_chip.cooling.secondary_htc,
            ambient_K=tiny_chip.cooling.ambient_K,
            z=z_centres,
        )
        # The uniform-heating profile through a sub-millimetre stack is nearly
        # flat; the numerical and analytic rises should agree within ~15%.
        rise_fvm = centre - tiny_chip.cooling.ambient_K
        rise_analytic = analytic - tiny_chip.cooling.ambient_K
        assert np.abs(rise_fvm - rise_analytic).max() / rise_analytic.max() < 0.15

    def test_analytic_slab_energy_consistency(self):
        profile = slab_1d_robin(1e-3, 100.0, 1e7, 5000.0, 0.0, 300.0, np.array([0.0, 1e-3]))
        assert profile[0] > profile[1] > 300.0

    def test_poisson_series_solution_is_symmetric(self):
        x, y, temperature = poisson_2d_dirichlet_series(
            1.0, 1.0, 1.0, lambda gx, gy: np.ones_like(gx), nx=16, ny=16, terms=30
        )
        assert temperature.shape == (16, 16)
        np.testing.assert_allclose(temperature, temperature.T, atol=1e-6)
        np.testing.assert_allclose(temperature, temperature[::-1, :], atol=1e-6)
        assert temperature.max() == pytest.approx(0.0737, rel=0.05)


class TestHotSpotModel:
    def test_block_temperatures_above_ambient(self, tiny_chip):
        model = HotSpotModel(tiny_chip)
        result = model.solve(_uniform_assignment(tiny_chip, 25.0))
        assert result.min_K > tiny_chip.cooling.ambient_K
        assert result.max_K >= result.min_K
        assert set(result.temperatures) == set(model.node_names)

    def test_powered_block_is_hottest(self, tiny_chip):
        model = HotSpotModel(tiny_chip)
        result = model.solve({"core_layer/core": 20.0})
        hottest = max(result.temperatures, key=result.temperatures.get)
        assert hottest == "core_layer/core"

    def test_zero_power_gives_ambient(self, tiny_chip):
        model = HotSpotModel(tiny_chip)
        result = model.solve({})
        np.testing.assert_allclose(
            list(result.temperatures.values()), tiny_chip.cooling.ambient_K, atol=1e-6
        )

    def test_unknown_block_rejected(self, tiny_chip):
        with pytest.raises(KeyError):
            HotSpotModel(tiny_chip).solve({"nonexistent/block": 5.0})

    def test_layer_map_rasterisation(self, tiny_chip):
        model = HotSpotModel(tiny_chip)
        result = model.solve(_uniform_assignment(tiny_chip, 25.0))
        maps = result.power_layer_maps(16, 16)
        assert maps.shape == (2, 16, 16)
        assert maps.min() > tiny_chip.cooling.ambient_K

    def test_compact_model_warmer_than_fvm(self, tiny_chip):
        """The lumped model neglects in-plane spreading detail and runs hotter,
        matching the HotSpot-vs-FEM gap reported in Table IV."""
        assignment = _uniform_assignment(tiny_chip, 25.0)
        fvm_peak = FVMSolver(tiny_chip, nx=16).solve(assignment).max_K
        compact_peak = HotSpotModel(tiny_chip).solve(assignment).max_K
        assert compact_peak > fvm_peak - 1.0

    def test_much_faster_than_fvm(self, tiny_chip):
        import time

        assignment = _uniform_assignment(tiny_chip, 25.0)
        start = time.perf_counter()
        FVMSolver(tiny_chip, nx=24).solve(assignment)
        fvm_time = time.perf_counter() - start
        start = time.perf_counter()
        HotSpotModel(tiny_chip).solve(assignment)
        compact_time = time.perf_counter() - start
        assert compact_time < fvm_time


class TestFloat32BatchSolve:
    """The float32 RHS-stacking option of FVMSolver.solve_batch."""

    def test_matches_float64_within_millikelvin(self, tiny_chip):
        cases = [_uniform_assignment(tiny_chip, total) for total in (10.0, 25.0, 40.0)]
        solver = FVMSolver(tiny_chip, nx=16)
        exact = solver.solve_batch(cases)
        single = solver.solve_batch(cases, dtype="float32")
        assert single[0].values.dtype == np.float32
        for a, b in zip(single, exact):
            assert np.abs(a.values.astype(np.float64) - b.values).max() <= 1e-3

    def test_benchmark_chips_within_millikelvin(self):
        from repro.chip.designs import get_chip

        chip = get_chip("chip1")
        cases = [_uniform_assignment(chip, total) for total in (40.0, 80.0)]
        solver = FVMSolver(chip, nx=24)
        exact = solver.solve_batch(cases)
        single = solver.solve_batch(cases, dtype="float32")
        for a, b in zip(single, exact):
            assert np.abs(a.values.astype(np.float64) - b.values).max() <= 1e-3

    def test_default_dtype_is_bitwise_float64(self, tiny_chip):
        cases = [_uniform_assignment(tiny_chip, 20.0)]
        solver = FVMSolver(tiny_chip, nx=12)
        assert np.array_equal(
            solver.solve_batch(cases)[0].values,
            solver.solve_batch(cases, dtype="float64")[0].values,
        )

    def test_float32_requires_direct_method(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=8, method="cg")
        with pytest.raises(ValueError, match="direct"):
            solver.solve_batch([_uniform_assignment(tiny_chip, 10.0)], dtype="float32")

    def test_unsupported_dtype_rejected(self, tiny_chip):
        solver = FVMSolver(tiny_chip, nx=8)
        with pytest.raises(ValueError, match="dtype"):
            solver.solve_batch([_uniform_assignment(tiny_chip, 10.0)], dtype="int32")


class TestInjectedGeometry:
    """FVMSolver accepts (and validates) a pre-built GridGeometry."""

    def test_shared_geometry_matches_lazy_build(self, tiny_chip):
        from repro.solvers.voxelize import build_geometry

        geometry = build_geometry(tiny_chip, nx=12, cells_per_layer=2)
        assignment = _uniform_assignment(tiny_chip, 15.0)
        shared = FVMSolver(tiny_chip, nx=12, geometry=geometry).solve(assignment)
        lazy = FVMSolver(tiny_chip, nx=12).solve(assignment)
        assert np.array_equal(shared.values, lazy.values)

    def test_resolution_mismatch_rejected(self, tiny_chip):
        from repro.solvers.voxelize import build_geometry

        geometry = build_geometry(tiny_chip, nx=12)
        with pytest.raises(ValueError, match="resolution"):
            FVMSolver(tiny_chip, nx=16, geometry=geometry)

    def test_chip_mismatch_rejected(self, tiny_chip):
        from repro.chip.designs import get_chip
        from repro.solvers.voxelize import build_geometry

        geometry = build_geometry(get_chip("chip1"), nx=12)
        with pytest.raises(ValueError, match="chip"):
            FVMSolver(tiny_chip, nx=12, geometry=geometry)
