"""Regression tests for the prepare-once / solve-many solver pipeline.

The refactor must not change physics: batched solves have to match per-case
solves, and the cached-assembly HotSpot / transient solvers have to produce
bit-identical outputs no matter how often (or in what order) a solver
instance is reused.
"""

import numpy as np
import pytest

from repro.data.power import PowerSampler
from repro.solvers import (
    FVMSolver,
    HotSpotModel,
    TransientFVMSolver,
    build_geometry,
    voxelize,
)


def _uniform_assignment(chip, total):
    names = chip.flat_block_names()
    return {name: total / len(names) for name in names}


@pytest.fixture
def cases(tiny_chip):
    sampler = PowerSampler(tiny_chip)
    return sampler.sample_many(5, np.random.default_rng(42))


class TestGeometryCache:
    def test_grid_for_matches_voxelize(self, tiny_chip, cases):
        geometry = build_geometry(tiny_chip, nx=12, cells_per_layer=2)
        for case in cases:
            fresh = voxelize(tiny_chip, case.assignment, nx=12, cells_per_layer=2)
            cached = geometry.grid_for(case.assignment)
            assert np.array_equal(fresh.heat_source, cached.heat_source)
            assert np.array_equal(fresh.conductivity, cached.conductivity)
            assert np.array_equal(fresh.dz_mm, cached.dz_mm)
            assert fresh.power_layer_slices == cached.power_layer_slices

    def test_rasterize_power_validation(self, tiny_chip):
        geometry = build_geometry(tiny_chip, nx=8)
        with pytest.raises(KeyError):
            geometry.rasterize_power({"core_layer/not_a_block": 1.0})
        with pytest.raises(ValueError):
            geometry.rasterize_power({"core_layer/core": -1.0})

    def test_geometry_is_power_free(self, tiny_chip):
        geometry = build_geometry(tiny_chip, nx=8)
        first = geometry.rasterize_power(_uniform_assignment(tiny_chip, 30.0))
        second = geometry.rasterize_power({})
        assert second.max() == 0.0
        assert first.max() > 0.0


class TestSolveBatch:
    def test_matches_per_case_solve(self, tiny_chip, cases):
        solver = FVMSolver(tiny_chip, nx=12)
        singles = [solver.solve(case.assignment) for case in cases]
        batch = solver.solve_batch([case.assignment for case in cases])
        assert len(batch) == len(cases)
        for single, batched in zip(singles, batch):
            np.testing.assert_allclose(batched.values, single.values, atol=1e-9, rtol=0)

    def test_matches_cold_solver(self, tiny_chip, cases):
        """A long-lived batched solver agrees with a fresh solver per case."""
        warm = FVMSolver(tiny_chip, nx=10)
        batch = warm.solve_batch([case.assignment for case in cases])
        for case, batched in zip(cases, batch):
            cold = FVMSolver(tiny_chip, nx=10).solve(case.assignment)
            np.testing.assert_allclose(batched.values, cold.values, atol=1e-9, rtol=0)

    def test_cg_batch_matches_direct(self, tiny_chip, cases):
        assignments = [case.assignment for case in cases]
        direct = FVMSolver(tiny_chip, nx=10, method="direct").solve_batch(assignments)
        cg = FVMSolver(tiny_chip, nx=10, method="cg").solve_batch(assignments)
        for a, b in zip(direct, cg):
            np.testing.assert_allclose(a.values, b.values, rtol=1e-6)

    def test_empty_batch(self, tiny_chip):
        assert FVMSolver(tiny_chip, nx=8).solve_batch([]) == []

    def test_batch_reports_amortized_seconds(self, tiny_chip, cases):
        solver = FVMSolver(tiny_chip, nx=10)
        batch = solver.solve_batch([case.assignment for case in cases])
        seconds = {field.solve_seconds for field in batch}
        assert len(seconds) == 1
        assert seconds.pop() > 0.0

    def test_no_cache_pollution_across_cases(self, tiny_chip):
        """Solving case B must not disturb a repeat solve of case A."""
        solver = FVMSolver(tiny_chip, nx=10)
        a = _uniform_assignment(tiny_chip, 10.0)
        b = {"core_layer/core": 40.0}
        first = solver.solve(a)
        solver.solve(b)
        again = solver.solve(a)
        assert np.array_equal(first.values, again.values)


class TestHotSpotCaching:
    def test_repeated_solves_bit_identical(self, tiny_chip, cases):
        model = HotSpotModel(tiny_chip)
        fresh = HotSpotModel(tiny_chip)
        for case in cases:
            first = model.solve(case.assignment)
            second = model.solve(case.assignment)
            reference = fresh.solve(case.assignment)
            assert first.temperatures == second.temperatures == reference.temperatures
            assert first.sink_temperature_K == reference.sink_temperature_K

    def test_matches_dense_solve_of_network(self, tiny_chip):
        """The cached LU path reproduces a direct dense solve of the network."""
        model = HotSpotModel(tiny_chip)
        assignment = _uniform_assignment(tiny_chip, 25.0)
        result = model.solve(assignment)
        power = model._base_power.copy()
        for key, value in assignment.items():
            power[model._node_index[key]] += value
        expected = np.linalg.solve(model._conductance, power)
        got = [result.temperatures[name] for name in model.node_names]
        np.testing.assert_allclose(got, expected[: len(got)], rtol=1e-9)


class TestTransientCaching:
    def test_repeated_solves_bit_identical(self, tiny_chip):
        solver = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1)
        fresh = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1)
        assignment = _uniform_assignment(tiny_chip, 15.0)
        first = solver.solve(assignment, duration_s=0.1, dt_s=0.02)
        second = solver.solve(assignment, duration_s=0.1, dt_s=0.02)
        reference = fresh.solve(assignment, duration_s=0.1, dt_s=0.02)
        assert np.array_equal(first.snapshots, second.snapshots)
        assert np.array_equal(first.snapshots, reference.snapshots)

    def test_time_varying_trace_bit_identical_across_reuse(self, tiny_chip):
        names = tiny_chip.flat_block_names()

        def trace(t):
            scale = 5.0 if t < 0.05 else 30.0
            return {name: scale / len(names) for name in names}

        solver = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1)
        # Pollute the caches with an unrelated constant-power solve first.
        solver.solve(_uniform_assignment(tiny_chip, 40.0), duration_s=0.04, dt_s=0.02)
        reused = solver.solve(trace, duration_s=0.1, dt_s=0.02)
        fresh = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1).solve(
            trace, duration_s=0.1, dt_s=0.02
        )
        assert np.array_equal(reused.snapshots, fresh.snapshots)

    def test_dt_change_invalidates_factor_cache(self, tiny_chip):
        solver = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1)
        assignment = _uniform_assignment(tiny_chip, 15.0)
        coarse = solver.solve(assignment, duration_s=0.08, dt_s=0.04)
        fine = solver.solve(assignment, duration_s=0.08, dt_s=0.01)
        reference = TransientFVMSolver(tiny_chip, nx=8, cells_per_layer=1).solve(
            assignment, duration_s=0.08, dt_s=0.01
        )
        assert np.array_equal(fine.snapshots, reference.snapshots)
        assert coarse.max_K() != pytest.approx(fine.max_K(), abs=0)
