"""Unit tests of the per-backend circuit breaker state machine."""

import pytest

from repro.api import CircuitBreaker, CircuitOpenError  # noqa: F401 — facade export
from repro.api.breaker import CircuitBreaker as DirectBreaker


class FakeClock:
    """A hand-cranked monotonic clock so cooldowns need no sleeping."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["opened"] == 1

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_cooldown_grants_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps waiting
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_fresh_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # Re-opening is not a new closed->open transition.
        assert breaker.stats()["opened"] == 1
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()

    def test_release_probe_abandons_without_verdict(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.release_probe()
        # The probe slot is free again without closing the breaker.
        assert breaker.state == "half_open"
        assert breaker.allow()

    def test_stats_counters(self, breaker, clock):
        breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        stats = breaker.stats()
        assert stats == {
            "state": "open",
            "consecutive_failures": 3,
            "failures": 3,
            "successes": 1,
            "opened": 1,
            "failure_threshold": 3,
            "cooldown_s": 10.0,
        }


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_cooldown_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)

    def test_facade_export_is_the_same_class(self):
        assert CircuitBreaker is DirectBreaker
