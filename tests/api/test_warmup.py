"""Session warm-up API and the adaptive batch-split heuristic."""

import numpy as np
import pytest

from repro.api.session import (
    ADAPTIVE_SPLIT_MIN_SECONDS,
    ThermalSession,
)
from repro.runtime.plane import create_plane
from repro.runtime.tasks import BackendSpec, backend_state_key

RES = 10


class TestWarmUp:
    def test_warms_triples_and_mappings(self):
        session = ThermalSession()
        outcome = session.warm_up([
            ("chip1", RES, "fvm"),
            {"chip": "chip2", "resolution": RES, "backend": "hotspot"},
        ])
        assert outcome["warmed"] == [f"chip1/{RES}/fvm", f"chip2/{RES}/hotspot"]
        assert outcome["errors"] == {}
        pools = session.stats()["pools"]
        assert pools["fvm"]["entries"] == 1
        assert pools["hotspot"]["entries"] == 1

    def test_mapping_defaults_backend_to_fvm(self):
        session = ThermalSession()
        outcome = session.warm_up([{"chip": "chip1", "resolution": RES}])
        assert outcome["warmed"] == [f"chip1/{RES}/fvm"]

    def test_unknown_chip_is_a_per_key_error(self):
        session = ThermalSession()
        outcome = session.warm_up([
            ("nope", RES, "fvm"),
            ("chip1", RES, "fvm"),
        ])
        assert outcome["warmed"] == [f"chip1/{RES}/fvm"]
        assert list(outcome["errors"]) == [f"nope/{RES}/fvm"]

    def test_warmed_key_answers_without_a_pool_miss(self):
        session = ThermalSession()
        session.warm_up([("chip1", RES, "fvm")])
        misses_before = session.stats()["pools"]["fvm"]["misses"]
        session.solve("chip1", 30.0, resolution=RES)
        assert session.stats()["pools"]["fvm"]["misses"] == misses_before

    def test_plane_backed_warm_up_builds_worker_state(self):
        plane = create_plane("threads", workers=2)
        session = ThermalSession(plane=plane)
        try:
            outcome = session.warm_up([
                ("chip1", RES, "fvm"),
                ("chip2", RES, "fvm"),
            ])
            assert sorted(outcome["warmed"]) == [
                f"chip1/{RES}/fvm", f"chip2/{RES}/fvm",
            ]
            assert outcome["errors"] == {}
            worker_stats = session.stats()["plane"]["per_worker"]
            assert sum(w["warm_keys"] for w in worker_stats) >= 2
        finally:
            plane.close()


class TestPlaneWarmUp:
    def test_execution_plane_warm_up_counts_built_states(self):
        from repro.chip.designs import get_chip
        from repro.runtime.tasks import build_backend_adapter

        plane = create_plane("threads", workers=2)
        try:
            specs = [
                BackendSpec(chip=get_chip("chip1"), resolution=RES, backend="fvm"),
                BackendSpec(chip=get_chip("chip2"), resolution=RES, backend="fvm"),
            ]
            recipes = [
                (backend_state_key(spec), build_backend_adapter, spec)
                for spec in specs
            ]
            assert plane.warm_up(recipes) == 2
        finally:
            plane.close()


class TestAdaptiveSplit:
    def _session(self, workers=2):
        plane = create_plane("threads", workers=workers)
        return ThermalSession(plane=plane), plane

    def _key(self, session, chip="chip1"):
        return backend_state_key(BackendSpec(
            chip=session.get_chip(chip),
            resolution=RES,
            backend="fvm",
            cells_per_layer=session.cells_per_layer,
        ))

    def test_small_cold_batch_does_not_split(self):
        session, plane = self._session()
        try:
            session.solve_batch("chip1", [20.0, 25.0], resolution=RES,
                                use_cache=False)
            dispatch = session.stats()["dispatch"]
            assert dispatch["plane_batches"] == 1
            assert dispatch["split_batches"] == 0
            assert dispatch["adaptive_splits"] == 0
        finally:
            plane.close()

    def test_static_rule_still_splits_deep_batches(self):
        session, plane = self._session()
        try:
            session.solve_batch("chip1", [20.0 + i for i in range(4)],
                                resolution=RES, use_cache=False)
            dispatch = session.stats()["dispatch"]
            assert dispatch["split_batches"] == 1
            assert dispatch["adaptive_splits"] == 0  # static, not adaptive
        finally:
            plane.close()

    def test_slow_key_splits_adaptively_below_the_static_floor(self):
        session, plane = self._session()
        try:
            # A live EWMA says this key costs 1 s/case: a 2-case batch is
            # far over ADAPTIVE_SPLIT_MIN_SECONDS, so it splits even though
            # the static rule (>= 2x workers = 4) would not.
            session._latency_ewma[self._key(session)] = 1.0
            session.solve_batch("chip1", [20.0, 25.0], resolution=RES,
                                use_cache=False)
            dispatch = session.stats()["dispatch"]
            assert dispatch["split_batches"] == 1
            assert dispatch["adaptive_splits"] == 1
        finally:
            plane.close()

    def test_fast_key_stays_whole_below_the_static_floor(self):
        session, plane = self._session()
        try:
            # 1 µs/case: 2 cases cost far under the split threshold.
            session._latency_ewma[self._key(session)] = 1e-6
            session.solve_batch("chip1", [20.0, 25.0], resolution=RES,
                                use_cache=False)
            assert session.stats()["dispatch"]["adaptive_splits"] == 0
        finally:
            plane.close()

    def test_ewma_learns_from_observed_batches(self):
        session, plane = self._session()
        try:
            assert session.stats()["dispatch"]["latency_ewma_keys"] == 0
            session.solve_batch("chip1", [20.0, 25.0], resolution=RES,
                                use_cache=False)
            assert session.stats()["dispatch"]["latency_ewma_keys"] == 1
            assert session._latency_ewma[self._key(session)] > 0
        finally:
            plane.close()

    def test_adaptive_split_answers_are_bitwise_identical(self):
        powers = [18.0 + i for i in range(3)]
        serial = ThermalSession()
        baseline = serial.solve_batch("chip1", powers, resolution=RES,
                                      include_maps=True, use_cache=False)
        session, plane = self._session()
        try:
            session._latency_ewma[self._key(session)] = 1.0  # force the split
            split = session.solve_batch("chip1", powers, resolution=RES,
                                        include_maps=True, use_cache=False)
            assert session.stats()["dispatch"]["adaptive_splits"] == 1
            for a, b in zip(baseline, split):
                assert a.max_K == b.max_K
                for name, layer in (a.layer_maps or {}).items():
                    np.testing.assert_array_equal(layer, b.layer_maps[name])
        finally:
            plane.close()

    def test_threshold_constant_is_sane(self):
        assert 0 < ADAPTIVE_SPLIT_MIN_SECONDS < 1
