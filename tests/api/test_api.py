"""Tests for the repro.api facade: solution type, backends, session, caches."""

import json

import numpy as np
import pytest

from repro.api import (
    ThermalBackend,
    ThermalSession,
    ThermalSolution,
    power_map_hash,
)
from repro.api.backends import BACKEND_NAMES
from repro.chip.designs import get_chip
from repro.data.power import uniform_power_assignment
from repro.operators.factory import LoadedOperator, build_operator
from repro.solvers.fvm import FVMSolver
from repro.solvers.hotspot import HotSpotModel
from repro.training.trainer import TrainingConfig

RES = 10  # tiny grids keep the exact solves fast


@pytest.fixture()
def session():
    return ThermalSession()


def _register_tiny_operator(session, chip_name="chip1", resolution=RES, rng_seed=0):
    chip = get_chip(chip_name)
    model = build_operator(
        "fno",
        chip.num_power_layers,
        chip.num_power_layers,
        {"width": 8, "modes1": 3, "modes2": 3},
        np.random.default_rng(rng_seed),
    )
    loaded = LoadedOperator(
        model=model,
        name="fno",
        in_channels=chip.num_power_layers,
        out_channels=chip.num_power_layers,
        options={},
        chip_name=chip_name,
        resolution=resolution,
    )
    session.register_model(loaded)
    return loaded


class TestThermalSolution:
    def test_to_json_nan_becomes_null(self):
        solution = ThermalSolution(
            chip="chip1", resolution=8, backend="operator",
            max_K=float("nan"), min_K=300.0, mean_K=float("inf"), total_power_W=10.0,
        )
        decoded = json.loads(json.dumps(solution.to_json()))
        assert decoded["max_K"] is None
        assert decoded["mean_K"] is None
        assert decoded["min_K"] == 300.0

    def test_layer_map_views_require_maps(self):
        solution = ThermalSolution(
            chip="chip1", resolution=8, backend="fvm",
            max_K=330.0, min_K=300.0, mean_K=320.0, total_power_W=10.0,
        )
        with pytest.raises(ValueError, match="include_maps"):
            solution.layer_map("core_layer")
        with pytest.raises(ValueError, match="include_maps"):
            solution.power_layer_maps()

    def test_error_vs_compares_common_layers(self):
        kwargs = dict(chip="chip1", resolution=4, backend="fvm",
                      min_K=300.0, total_power_W=10.0)
        a = ThermalSolution(max_K=330.0, mean_K=320.0,
                            layer_maps={"core": np.full((4, 4), 330.0)}, **kwargs)
        b = ThermalSolution(max_K=329.0, mean_K=318.0,
                            layer_maps={"core": np.full((4, 4), 329.0)}, **kwargs)
        errors = a.error_vs(b)
        assert errors["delta_max_K"] == pytest.approx(1.0)
        assert errors["max_abs_K"] == pytest.approx(1.0)
        assert errors["rmse_K"] == pytest.approx(1.0)

    def test_clone_is_independent(self):
        original = ThermalSolution(
            chip="chip1", resolution=8, backend="fvm",
            max_K=330.0, min_K=300.0, mean_K=320.0, total_power_W=10.0,
            provenance={"source": "fvm"},
        )
        copy = original.clone(provenance={"source": "fvm", "cached": True})
        copy.latency_seconds = 1.0
        copy.hotspot["x_mm"] = 5.0
        assert original.latency_seconds == 0.0
        assert original.hotspot == {}
        assert not original.cached and copy.cached


class TestPowerMapHash:
    def test_order_invariant_and_value_sensitive(self):
        a = {"core_layer/Core": 20.0, "l2_cache_layer/L2": 5.0}
        b = {"l2_cache_layer/L2": 5.0, "core_layer/Core": 20.0}
        assert power_map_hash(a) == power_map_hash(b)
        assert power_map_hash(a) != power_map_hash({**a, "core_layer/Core": 20.0001})


class TestSessionSolve:
    def test_all_four_backends_one_signature(self, session):
        """Acceptance: the same call answers via fvm/hotspot/transient/operator."""
        _register_tiny_operator(session)
        for backend in BACKEND_NAMES:
            solution = session.solve(
                "chip1", total_power_W=30.0, resolution=RES, backend=backend
            )
            assert isinstance(solution, ThermalSolution)
            assert solution.backend == backend
            assert solution.chip == "chip1"
            assert solution.resolution == RES
            assert np.isfinite(solution.max_K)

    def test_fvm_matches_direct_solver_exactly(self, session):
        """Acceptance: session answers == pre-refactor FVMSolver.solve <= 1e-9."""
        chip = get_chip("chip2")
        assignment = uniform_power_assignment(chip, 45.0)
        solution = session.solve(
            "chip2", assignment, resolution=RES, include_values=True, include_maps=True
        )
        reference = FVMSolver(chip, nx=RES).solve(assignment)
        assert np.abs(solution.values - reference.values).max() <= 1e-9
        assert abs(solution.max_K - reference.max_K) <= 1e-9
        for name in chip.power_layer_names:
            assert np.abs(solution.layer_map(name) - reference.layer_map(name)).max() <= 1e-9

    def test_hotspot_matches_compact_model(self, session):
        chip = get_chip("chip1")
        assignment = uniform_power_assignment(chip, 30.0)
        solution = session.solve("chip1", assignment, resolution=RES, backend="hotspot")
        reference = HotSpotModel(chip).solve(assignment)
        assert abs(solution.max_K - reference.max_K) <= 1e-9

    def test_transient_converges_to_steady_answer(self, session):
        steady = session.solve("chip1", total_power_W=30.0, resolution=8)
        quasi = session.solve("chip1", total_power_W=30.0, resolution=8, backend="transient")
        assert quasi.provenance["quasi_steady"]
        assert quasi.history is not None and len(quasi.history["times_s"]) > 1
        assert abs(quasi.max_K - steady.max_K) < 0.5

    def test_powers_accepts_number_mapping_and_case(self, session):
        from repro.data.power import PowerSampler

        by_number = session.solve("chip1", 30.0, resolution=RES)
        by_total = session.solve("chip1", total_power_W=30.0, resolution=RES)
        assert by_number.max_K == pytest.approx(by_total.max_K, abs=1e-12)
        case = PowerSampler(get_chip("chip1")).sample(np.random.default_rng(3))
        by_case = session.solve("chip1", case, resolution=RES)
        assert by_case.total_power_W == pytest.approx(case.total_W)

    def test_unknown_backend_and_chip_rejected(self, session):
        with pytest.raises(ValueError, match="unknown backend"):
            session.solve("chip1", total_power_W=10.0, resolution=RES, backend="comsol")
        with pytest.raises(KeyError):
            session.solve("chip9", total_power_W=10.0, resolution=RES)

    def test_powers_and_total_power_conflict(self, session):
        with pytest.raises(ValueError, match="not both"):
            session.solve("chip1", {"core_layer/Core": 5.0}, total_power_W=10.0)

    def test_include_values_requires_a_field_backend(self, session):
        with pytest.raises(ValueError, match="cannot produce a 3-D field"):
            session.solve("chip1", total_power_W=10.0, resolution=RES,
                          backend="hotspot", include_values=True)

    def test_cached_arrays_are_isolated_from_consumers(self, session):
        first = session.solve("chip1", total_power_W=30.0, resolution=RES,
                              include_maps=True)
        first.layer_maps["core_layer"] -= 273.15  # in-place unit conversion
        second = session.solve("chip1", total_power_W=30.0, resolution=RES,
                               include_maps=True)
        assert second.cached
        assert second.layer_maps["core_layer"].min() > 200.0  # still kelvin


class TestResultCache:
    def test_repeated_solves_hit_the_cache(self, session):
        """Acceptance: repeated same-power-map solves hit the session cache."""
        first = session.solve("chip1", total_power_W=30.0, resolution=RES)
        second = session.solve("chip1", total_power_W=30.0, resolution=RES)
        assert not first.cached
        assert second.cached
        stats = session.result_cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert second.max_K == pytest.approx(first.max_K, abs=0)

    def test_batch_mixes_hits_and_misses(self, session):
        warm = {"core_layer/Core": 12.0}
        session.solve("chip1", warm, resolution=RES)
        cold = {"core_layer/Core": 24.0}
        solutions = session.solve_batch("chip1", [warm, cold], resolution=RES)
        assert solutions[0].cached and not solutions[1].cached
        reference = FVMSolver(get_chip("chip1"), nx=RES).solve(
            {**{n: 0.0 for n in get_chip("chip1").flat_block_names()}, **cold}
        )
        assert abs(solutions[1].max_K - reference.max_K) <= 1e-9

    def test_cache_key_separates_backend_resolution_and_detail(self, session):
        session.solve("chip1", total_power_W=30.0, resolution=RES)
        session.solve("chip1", total_power_W=30.0, resolution=RES, backend="hotspot")
        session.solve("chip1", total_power_W=30.0, resolution=RES + 2)
        session.solve("chip1", total_power_W=30.0, resolution=RES, include_maps=True)
        assert session.result_cache.stats()["hits"] == 0
        assert session.result_cache.stats()["misses"] == 4

    def test_use_cache_false_bypasses(self, session):
        session.solve("chip1", total_power_W=30.0, resolution=RES, use_cache=False)
        session.solve("chip1", total_power_W=30.0, resolution=RES, use_cache=False)
        stats = session.result_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["entries"] == 0

    def test_full_field_answers_bypass_the_cache(self, session):
        session.solve("chip1", total_power_W=30.0, resolution=RES, include_values=True)
        session.solve("chip1", total_power_W=30.0, resolution=RES, include_values=True)
        stats = session.result_cache.stats()
        assert stats["entries"] == 0 and stats["hits"] == 0

    def test_byte_budget_bounds_the_cache(self):
        from repro.api.pool import ResultCache

        cache = ResultCache(capacity=10, max_bytes=100)
        cache.put("a", "A", size_bytes=60)
        cache.put("b", "B", size_bytes=60)  # evicts "a": 120 > 100
        assert cache.get("a") is None
        assert cache.get("b") == "B"
        assert cache.stats()["evictions"] == 1
        cache.put("huge", "H", size_bytes=1000)  # oversized: never stored
        assert cache.get("huge") is None
        assert cache.stats()["bytes"] <= 100

    def test_mutating_a_returned_solution_does_not_poison_the_cache(self, session):
        first = session.solve("chip1", total_power_W=30.0, resolution=RES)
        first.latency_seconds = 99.0
        first.refined = True
        second = session.solve("chip1", total_power_W=30.0, resolution=RES)
        assert second.latency_seconds == 0.0
        assert not second.refined


class TestBackendsAndPools:
    def test_backend_adapters_satisfy_the_protocol(self, session):
        _register_tiny_operator(session)
        for name in BACKEND_NAMES:
            adapter = session.backend(name, "chip1", RES)
            assert isinstance(adapter, ThermalBackend)
            assert adapter.name == name
            capabilities = adapter.capabilities()
            assert isinstance(capabilities, dict) and "exact" in capabilities
            description = adapter.describe()
            assert description["backend" if name != "operator" else "backend"] == name

    def test_pooling_reuses_prepared_adapters(self, session):
        first = session.backend("fvm", "chip1", RES)
        second = session.backend("fvm", "chip1", RES)
        other = session.backend("fvm", "chip1", RES + 2)
        assert first is second
        assert first is not other
        stats = session.pool("fvm").stats()
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_session_stats_shape(self, session):
        session.solve("chip1", total_power_W=20.0, resolution=RES)
        stats = session.stats()
        assert set(stats["pools"]) == {"fvm", "hotspot", "transient"}
        assert stats["result_cache"]["misses"] == 1
        assert stats["models"] == 0


class TestCustomChips:
    def test_register_chip_makes_it_addressable(self, session):
        chip = get_chip("chip1")
        import dataclasses

        custom = dataclasses.replace(chip, name="my_chip")
        session.register_chip(custom)
        assert "my_chip" in session.list_chips()
        solution = session.solve("my_chip", total_power_W=25.0, resolution=RES)
        reference = session.solve("chip1", total_power_W=25.0, resolution=RES)
        assert solution.max_K == pytest.approx(reference.max_K, abs=1e-9)

    def test_equivalent_rebuilt_chip_objects_keep_warm_state(self, session):
        """Fresh-but-identical ChipStack objects must not thrash pools/cache."""
        first = session.solve(get_chip("chip1"), total_power_W=25.0, resolution=RES)
        second = session.solve(get_chip("chip1"), total_power_W=25.0, resolution=RES)
        assert not first.cached
        assert second.cached
        assert session.pool("fvm").stats()["misses"] == 1

    def test_custom_chip_name_is_case_insensitive(self, session):
        import dataclasses

        session.register_chip(dataclasses.replace(get_chip("chip1"), name="EV6_Stack"))
        assert session.get_chip("ev6_stack").name == "EV6_Stack"
        solution = session.solve("ev6_stack", total_power_W=20.0, resolution=RES)
        assert np.isfinite(solution.max_K)

    def test_reregistering_a_changed_design_invalidates_stale_state(self, session):
        """A re-registered name must not serve the old design's answers."""
        import dataclasses

        chip = get_chip("chip1")
        session.register_chip(dataclasses.replace(chip, name="my_chip"))
        before = session.solve("my_chip", total_power_W=25.0, resolution=RES)
        hotter = dataclasses.replace(
            chip,
            name="my_chip",
            cooling=dataclasses.replace(chip.cooling, ambient_K=chip.cooling.ambient_K + 10.0),
        )
        session.register_chip(hotter)
        after = session.solve("my_chip", total_power_W=25.0, resolution=RES)
        assert not after.cached
        assert after.max_K == pytest.approx(before.max_K + 10.0, abs=0.5)


class TestTrainAndEvaluate:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return ThermalSession().generate_dataset(
            "chip1", resolution=RES, num_samples=8, seed=5
        )

    def test_generate_dataset_matches_spec(self, tiny_dataset):
        assert tiny_dataset.chip_name == "chip1"
        assert tiny_dataset.resolution == RES
        assert len(tiny_dataset) == 8

    def test_train_register_and_serve_through_operator_backend(self, session, tiny_dataset):
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        trained = session.train(
            split.train,
            method="fno",
            config={"width": 8, "modes1": 3, "modes2": 3},
            training=TrainingConfig(epochs=1, batch_size=4, seed=0),
            register=True,
        )
        assert trained.servable
        assert trained.num_parameters > 0
        report = session.evaluate(trained, split.test)
        assert np.isfinite(report.rmse)
        # The freshly trained surrogate answers through the session like any
        # other backend.
        solution = session.solve(
            "chip1", total_power_W=30.0, resolution=RES, backend="operator"
        )
        assert solution.backend == "operator"
        assert solution.provenance["model"] == "fno"

    def test_trained_operator_roundtrips_to_disk(self, session, tiny_dataset, tmp_path):
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        trained = session.train(
            split.train,
            method="fno",
            config={"width": 8, "modes1": 3, "modes2": 3},
            training=TrainingConfig(epochs=1, batch_size=4, seed=0),
        )
        path = tmp_path / "fno.npz"
        trained.save(str(path))
        fresh = ThermalSession()
        loaded = fresh.load_model(str(path))
        assert loaded.chip_name == "chip1" and loaded.resolution == RES
        solution = fresh.solve("chip1", total_power_W=30.0, resolution=RES,
                               backend="operator")
        assert np.isfinite(solution.max_K)

    def test_gar_trains_but_is_not_servable(self, session, tiny_dataset):
        split = tiny_dataset.split(0.75, rng=np.random.default_rng(0))
        trained = session.train(split.train, method="gar", config={"n_components": 4})
        assert not trained.servable
        assert np.isfinite(trained.evaluate(split.test).rmse)
        with pytest.raises(ValueError, match="not servable"):
            trained.save("/tmp/never_written.npz")

    def test_operator_backend_without_model_raises(self, session):
        with pytest.raises(KeyError, match="no operator model registered"):
            session.solve("chip1", total_power_W=10.0, resolution=RES, backend="operator")


class TestCompatReexports:
    def test_serving_reexports_pool_and_registry(self):
        from repro.api.pool import LRUPool as APIPool
        from repro.api.registry import ModelRegistry as APIRegistry
        from repro.serving.backends import LRUPool, ModelRegistry

        assert LRUPool is APIPool
        assert ModelRegistry is APIRegistry

    def test_thermal_result_is_thermal_solution(self):
        from repro.serving.request import ThermalResult

        assert ThermalResult is ThermalSolution

    def test_top_level_lazy_exports(self):
        import repro

        assert repro.ThermalSession is ThermalSession
        assert repro.ThermalSolution is ThermalSolution
        assert callable(repro.get_chip) and callable(repro.build_operator)
        assert repro.FVMSolver is FVMSolver


class TestSessionExecutionPlane:
    """solve_batch / generate_dataset dispatch through a configured plane."""

    def test_thread_plane_batch_matches_inline(self):
        from repro.runtime import ThreadPlane

        powers = [20.0 + index for index in range(6)]
        inline = ThermalSession().solve_batch(
            "chip1", powers, resolution=RES, include_maps=True, use_cache=False
        )
        with ThreadPlane(workers=2) as plane:
            planar = ThermalSession(plane=plane).solve_batch(
                "chip1", powers, resolution=RES, include_maps=True, use_cache=False
            )
            stats = plane.stats()
        for a, b in zip(inline, planar):
            assert (a.max_K, a.min_K, a.mean_K) == (b.max_K, b.min_K, b.mean_K)
            for name in a.layer_maps:
                assert np.array_equal(a.layer_maps[name], b.layer_maps[name])
        # 6 misses >= 2 * 2 workers -> the batch was split across workers.
        assert stats["tasks"] == 2
        assert [w["tasks"] for w in stats["per_worker"]] == [1, 1]

    def test_small_batches_travel_whole(self):
        from repro.runtime import ThreadPlane

        with ThreadPlane(workers=2) as plane:
            session = ThermalSession(plane=plane)
            session.solve("chip1", total_power_W=25.0, resolution=RES, use_cache=False)
            assert plane.stats()["tasks"] == 1

    def test_cache_hits_skip_the_plane(self):
        from repro.runtime import SerialPlane

        plane = SerialPlane()
        session = ThermalSession(plane=plane)
        first = session.solve("chip1", total_power_W=30.0, resolution=RES)
        again = session.solve("chip1", total_power_W=30.0, resolution=RES)
        assert again.cached and not first.cached
        assert plane.stats()["tasks"] == 1

    def test_operator_backend_stays_inline(self, session):
        from repro.runtime import SerialPlane

        _register_tiny_operator(session)
        plane = SerialPlane()
        session.plane = plane
        solution = session.solve(
            "chip1", total_power_W=30.0, resolution=RES, backend="operator",
            use_cache=False,
        )
        session.plane = None
        assert solution.backend == "operator"
        assert plane.stats()["tasks"] == 0

    def test_per_call_plane_overrides_session(self):
        from repro.runtime import SerialPlane

        plane = SerialPlane()
        ThermalSession().solve_batch(
            "chip1", [22.0], resolution=RES, use_cache=False, plane=plane
        )
        assert plane.stats()["tasks"] == 1

    def test_generate_dataset_uses_session_plane(self):
        from repro.runtime import SerialPlane

        plane = SerialPlane()
        session = ThermalSession(plane=plane)
        baseline = ThermalSession().generate_dataset(
            "chip1", resolution=RES, num_samples=4, seed=9, batch_size=2
        )
        dataset = session.generate_dataset(
            "chip1", resolution=RES, num_samples=4, seed=9, batch_size=2
        )
        assert plane.stats()["tasks"] == 2
        np.testing.assert_array_equal(dataset.inputs, baseline.inputs)
        np.testing.assert_array_equal(dataset.targets, baseline.targets)

    def test_stats_surface_plane_counters(self):
        from repro.runtime import SerialPlane

        assert ThermalSession().stats()["plane"] is None
        session = ThermalSession(plane=SerialPlane())
        session.solve("chip1", total_power_W=28.0, resolution=RES, use_cache=False)
        plane_stats = session.stats()["plane"]
        assert plane_stats["kind"] == "serial"
        assert plane_stats["tasks"] == 1
        assert plane_stats["per_worker"][0]["warm_keys"] == 1
