"""Tests for the accuracy metrics and timing utilities."""

import time

import numpy as np
import pytest

from repro.metrics import (
    MetricReport,
    Timer,
    evaluate_all,
    junction_temperature_error,
    mae,
    mape,
    mean_temperature_error,
    pape,
    relative_l2,
    rmse,
    speedup,
)


class TestErrorMetrics:
    def test_zero_for_perfect_prediction(self, rng):
        truth = rng.uniform(300, 400, (4, 2, 8, 8))
        assert rmse(truth, truth) == 0.0
        assert mae(truth, truth) == 0.0
        assert mape(truth, truth) == 0.0
        assert pape(truth, truth) == 0.0
        assert junction_temperature_error(truth, truth) == 0.0
        assert relative_l2(truth, truth) < 1e-10

    def test_rmse_and_mae_known_values(self):
        prediction = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        target = np.zeros_like(prediction)
        assert rmse(prediction, target) == pytest.approx(np.sqrt(30 / 4))
        assert mae(prediction, target) == pytest.approx(2.5)
        assert mean_temperature_error(prediction, target) == pytest.approx(2.5)

    def test_mape_and_pape_percentages(self):
        target = np.full((1, 1, 1, 2), 100.0)
        prediction = np.array([[[[101.0, 98.0]]]])
        assert mape(prediction, target) == pytest.approx(1.5)
        assert pape(prediction, target) == pytest.approx(2.0)

    def test_junction_temperature_error_uses_per_sample_peaks(self):
        target = np.zeros((2, 1, 2, 2))
        target[0, 0, 0, 0] = 10.0
        target[1, 0, 1, 1] = 20.0
        prediction = target.copy()
        prediction[0, 0, 0, 0] = 12.0  # peak off by 2 in sample 0
        prediction[1, 0, 1, 1] = 19.0  # peak off by 1 in sample 1
        assert junction_temperature_error(prediction, target) == pytest.approx(1.5)

    def test_rmse_at_least_mae(self, rng):
        prediction = rng.uniform(300, 400, (5, 1, 6, 6))
        target = rng.uniform(300, 400, (5, 1, 6, 6))
        assert rmse(prediction, target) >= mae(prediction, target)

    def test_shape_mismatch_and_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            mae(np.zeros((0,)), np.zeros((0,)))

    def test_evaluate_all_bundle(self, rng):
        target = rng.uniform(300, 400, (3, 2, 5, 5))
        prediction = target + rng.standard_normal(target.shape)
        report = evaluate_all(prediction, target)
        assert isinstance(report, MetricReport)
        values = report.as_dict()
        assert set(values) == {"RMSE", "MAPE", "PAPE", "Max", "Mean", "RelL2"}
        assert "RMSE=" in report.row()

    def test_metric_invariance_to_sample_order(self, rng):
        target = rng.uniform(300, 400, (6, 1, 4, 4))
        prediction = target + rng.standard_normal(target.shape)
        order = rng.permutation(6)
        assert rmse(prediction, target) == pytest.approx(rmse(prediction[order], target[order]))
        assert junction_temperature_error(prediction, target) == pytest.approx(
            junction_temperature_error(prediction[order], target[order])
        )


class TestTiming:
    def test_timer_records_and_averages(self):
        timer = Timer("test")
        result = timer.time(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        timer.add(0.5)
        assert timer.count == 2
        assert timer.total >= 0.5
        assert timer.mean > 0

    def test_timer_mean_requires_samples(self):
        with pytest.raises(ValueError):
            _ = Timer("empty").mean

    def test_speedup(self):
        assert speedup(10.0, 0.1) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_timer_repr(self):
        timer = Timer("fvm")
        assert "empty" in repr(timer)
        timer.add(1.0)
        assert "fvm" in repr(timer)
