"""Docstring lint for the public API surface.

A ``pydocstyle``-flavoured guard without the dependency: every public module,
class, function, method and property in :mod:`repro.api`,
:mod:`repro.serving` and :mod:`repro.runtime` must carry a non-empty
docstring.  The facade, the service and the execution planes are the
surfaces other people program against; an undocumented symbol there is a
bug the same way a missing validation is.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.api
import repro.cluster
import repro.obs
import repro.runtime
import repro.serving

PACKAGES = (repro.api, repro.serving, repro.runtime, repro.obs, repro.cluster)


def _iter_modules():
    for package in PACKAGES:
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                yield importlib.import_module(f"{package.__name__}.{info.name}")


def _module_names():
    return [module.__name__ for module in _iter_modules()]


def _public_members(owner, predicate):
    for name, member in inspect.getmembers(owner, predicate):
        if not name.startswith("_"):
            yield name, member


def _missing_docstrings():
    """Every public symbol of the audited packages lacking a docstring."""
    missing = []
    package_prefixes = tuple(package.__name__ for package in PACKAGES)
    for module in _iter_modules():
        if not (module.__doc__ or "").strip():
            missing.append(module.__name__)
        for name, member in _public_members(
            module, lambda m: inspect.isclass(m) or inspect.isfunction(m)
        ):
            # Only symbols defined inside the audited packages: re-exports
            # (numpy, chip designs, ...) are other modules' responsibility.
            if not (member.__module__ or "").startswith(package_prefixes):
                continue
            qualified = f"{module.__name__}.{name}"
            if not (member.__doc__ or "").strip():
                missing.append(qualified)
            if not inspect.isclass(member):
                continue
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                target = None
                if isinstance(attr, property):
                    target = attr.fget
                elif isinstance(attr, (staticmethod, classmethod)):
                    target = attr.__func__
                elif inspect.isfunction(attr):
                    target = attr
                if target is not None and not (target.__doc__ or "").strip():
                    missing.append(f"{qualified}.{attr_name}")
    return sorted(set(missing))


def test_audited_packages_are_the_expected_ones():
    names = _module_names()
    assert "repro.api.session" in names
    assert "repro.api.pool" in names
    assert "repro.serving.engine" in names
    assert "repro.serving.server" in names
    assert "repro.runtime.plane" in names
    assert "repro.runtime.tasks" in names
    assert "repro.obs.bus" in names
    assert "repro.obs.metrics" in names
    assert "repro.cluster.router" in names
    assert "repro.cluster.membership" in names


def test_every_public_symbol_has_a_docstring():
    missing = _missing_docstrings()
    assert not missing, (
        "public symbols without docstrings in repro.api / repro.serving:\n  "
        + "\n  ".join(missing)
    )


@pytest.mark.parametrize(
    "symbol",
    ["ThermalSession", "ThermalSolution", "ThermalBackend", "LRUPool", "ModelRegistry"],
)
def test_headline_api_symbols_are_documented(symbol):
    member = getattr(repro.api, symbol)
    assert (member.__doc__ or "").strip(), f"repro.api.{symbol} has no docstring"
