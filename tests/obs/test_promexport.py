"""Prometheus exposition rendering: line grammar, labels, HELP/TYPE headers."""

import re

from repro.obs.promexport import render_prometheus
from repro.obs.trace import build_trace, new_trace_id

#: One exposition sample line: name, optional {labels}, and a float value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"      # metric name
    r"(\{[a-zA-Z_]+=\"[^\"]*\"(,[a-zA-Z_]+=\"[^\"]*\")*\})?"  # labels
    r" -?[0-9.e+-]+$"                  # value
)

FULL_STATS = {
    "total_requests": 42,
    "rejected_requests": 3,
    "shed_requests": 1,
    "queue_depth": 2,
    "max_queue": 64,
    "throughput_rps": 8.5,
    "workers": 2,
    "uptime_seconds": 12.5,
    "backends": {
        "fvm": {
            "requests": 40, "batches": 12, "errors": 1, "refined": 2,
            "samples_dropped": 5,
            "latency_ms": {"p50": 3.0, "p95": 9.0, "p99": 15.0},
        },
    },
    "groups": [
        {"chip": "chip1", "resolution": 32, "backend": "fvm",
         "requests": 30, "errors": 1, "shed": 0},
        {"chip": "chip2", "resolution": 48, "backend": "hotspot",
         "requests": 10, "errors": 0, "shed": 1},
    ],
    "session": {
        "result_cache": {
            "hits": 10, "misses": 30, "entries": 7, "bytes": 4096,
            "hit_rate": 0.25, "evictions_count": 2, "evictions_bytes": 1,
            "expirations": 4,
        },
        "plane": {"workers": 4, "workers_dead": 1, "tasks": 99, "retried": 3,
                  "errors": 0},
        "reliability": {
            "breakers": {"fvm": {"state": "open", "opened": 2}},
            "breaker_rejections": 5,
            "fallbacks": 6,
        },
    },
    "events": {
        "published": 120, "dropped": 4, "subscribers": 1,
        "by_kind": {"request_done": 100, "worker_dead": 1},
    },
    "transient_endpoint": {"requests": 9},
}


class TestExposition:
    def test_every_line_parses(self):
        text = render_prometheus(FULL_STATS)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_RE.match(line), f"bad exposition line: {line!r}"

    def test_headers_emitted_once_per_metric(self):
        text = render_prometheus(FULL_STATS)
        helps = [l.split()[2] for l in text.splitlines() if l.startswith("# HELP")]
        assert len(helps) == len(set(helps))
        # Every sample's metric name was declared.
        declared = set(helps)
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name = re.split(r"[{ ]", line, 1)[0]
            assert name in declared

    def test_core_counters_and_labels(self):
        text = render_prometheus(FULL_STATS)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 42" in text
        assert 'repro_backend_requests_total{backend="fvm"} 40' in text
        assert 'repro_backend_latency_ms{backend="fvm",quantile="0.99"} 15.0' in text
        assert 'repro_backend_latency_samples_dropped_total{backend="fvm"} 5' in text
        assert 'repro_cache_evictions_total{cause="ttl"} 4' in text
        assert 'repro_breaker_state{backend="fvm"} 2' in text  # open = 2
        assert "repro_plane_workers_dead 1" in text
        assert "repro_plane_workers_alive 3" in text
        assert 'repro_events_by_kind_total{kind="request_done"} 100' in text
        assert "repro_transient_requests_total 9" in text

    def test_group_labels(self):
        text = render_prometheus(FULL_STATS)
        assert ('repro_requests_total{chip="chip1",resolution="32",'
                'backend="fvm"} 30') in text
        assert ('repro_group_errors_total{chip="chip1",resolution="32",'
                'backend="fvm"} 1') in text
        assert ('repro_group_shed_total{chip="chip2",resolution="48",'
                'backend="hotspot"} 1') in text
        # The labelled samples share the bare counter's single declaration.
        assert text.count("# TYPE repro_requests_total") == 1

    def test_uptime_parameter_wins_over_stats_field(self):
        text = render_prometheus(FULL_STATS, uptime_s=99.0)
        assert "repro_uptime_seconds 99.0" in text

    def test_absent_blocks_are_skipped(self):
        text = render_prometheus({"total_requests": 1})
        assert "repro_requests_total 1" in text
        assert "repro_cache" not in text
        assert "repro_breaker" not in text
        assert "repro_events" not in text

    def test_label_values_are_escaped(self):
        stats = {"backends": {'we"ird\nname': {"requests": 1}}}
        text = render_prometheus(stats)
        assert 'backend="we\\"ird\\nname"' in text


class TestTrace:
    def test_trace_ids_are_unique_and_ordered(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        prefix_a, counter_a = first.rsplit("-", 1)
        prefix_b, counter_b = second.rsplit("-", 1)
        assert prefix_a == prefix_b  # same process
        assert int(counter_b) == int(counter_a) + 1

    def test_build_trace_converts_spans_to_ms(self):
        trace = build_trace("t-1", queue_wait_s=0.002, dispatch_s=0.0005,
                            solve_s=0.25, refine_s=0.0)
        assert trace["trace_id"] == "t-1"
        assert trace["spans_ms"] == {
            "queue_wait": 2.0, "dispatch": 0.5, "solve": 250.0, "refine": 0.0,
        }

    def test_build_trace_clamps_negative_clock_skew(self):
        trace = build_trace("t-2", queue_wait_s=-0.001, dispatch_s=0.0,
                            solve_s=0.0, refine_s=0.0)
        assert trace["spans_ms"]["queue_wait"] == 0.0
