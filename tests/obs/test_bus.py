"""EventBus semantics: dense cursors, replay, backpressure, long-poll."""

import threading
import time

import pytest

from repro.obs.bus import EventBus, publish_all
from repro.obs.events import CacheEviction, QueueSaturated, RequestDone, WorkerDead


def _request(n):
    return RequestDone(request_id=f"r{n}")


class TestPublishAndReplay:
    def test_sequence_numbers_are_dense_and_monotonic(self):
        bus = EventBus()
        seqs = [bus.publish(_request(n)).seq for n in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert bus.cursor == 5

    def test_publish_stamps_wall_clock(self):
        bus = EventBus(clock=lambda: 123.5)
        event = bus.publish(_request(0))
        assert event.ts == 123.5

    def test_replay_from_cursor_returns_exactly_the_missed_events(self):
        bus = EventBus()
        for n in range(6):
            bus.publish(_request(n))
        tail = bus.replay(since=4)
        assert [e.seq for e in tail] == [5, 6]
        assert bus.replay(since=bus.cursor) == []

    def test_replay_respects_limit(self):
        bus = EventBus()
        for n in range(6):
            bus.publish(_request(n))
        assert [e.seq for e in bus.replay(since=0, limit=2)] == [1, 2]

    def test_history_ring_is_bounded(self):
        bus = EventBus(history=3)
        for n in range(10):
            bus.publish(_request(n))
        held = bus.replay(since=0)
        assert [e.seq for e in held] == [8, 9, 10]
        assert bus.stats()["history"] == 3

    def test_last_alert_skips_non_alert_events(self):
        bus = EventBus()
        assert bus.last_alert() is None
        bus.publish(_request(0))
        bus.publish(WorkerDead(slot=1))
        bus.publish(CacheEviction(cause="ttl", key="k"))
        alert = bus.last_alert()
        assert alert is not None and alert.kind == "worker_dead"

    def test_publish_all_no_ops_on_none_bus(self):
        publish_all(None, [_request(0)])  # must not raise
        bus = EventBus()
        publish_all(bus, [_request(0), _request(1)])
        assert bus.cursor == 2


class TestBackpressure:
    def test_slow_subscriber_drops_oldest_and_counts(self):
        bus = EventBus()
        with bus.subscribe(maxlen=2) as slow:
            for n in range(5):
                bus.publish(_request(n))
            assert slow.dropped == 3
            kept = slow.drain()
            # The two freshest events survive; exact backfill is replay's job.
            assert [e.seq for e in kept] == [4, 5]
        assert bus.stats()["subscribers"] == 0

    def test_publisher_never_blocks_on_a_wedged_subscriber(self):
        bus = EventBus()
        subscription = bus.subscribe(maxlen=1)  # wedged: never drained
        started = time.perf_counter()
        for n in range(2000):
            bus.publish(_request(n))
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0  # would park forever if publish ever blocked
        assert subscription.dropped == 1999
        assert bus.stats()["dropped"] == 1999
        subscription.close()

    def test_get_timeout_returns_none(self):
        bus = EventBus()
        with bus.subscribe() as subscription:
            assert subscription.get(timeout=0.01) is None

    def test_get_wakes_on_publish_from_another_thread(self):
        bus = EventBus()
        with bus.subscribe() as subscription:
            timer = threading.Timer(0.05, lambda: bus.publish(_request(0)))
            timer.start()
            event = subscription.get(timeout=5.0)
            timer.join()
        assert event is not None and event.seq == 1

    def test_closed_subscription_rejects_offers_and_unblocks_get(self):
        bus = EventBus()
        subscription = bus.subscribe()
        subscription.close()
        bus.publish(_request(0))
        assert len(subscription) == 0
        assert subscription.get(timeout=0.0) is None
        subscription.close()  # double close is fine


class TestWaitFor:
    def test_returns_immediately_when_events_exist(self):
        bus = EventBus()
        bus.publish(_request(0))
        started = time.perf_counter()
        events = bus.wait_for(since=0, timeout=5.0)
        assert time.perf_counter() - started < 1.0
        assert [e.seq for e in events] == [1]

    def test_times_out_empty(self):
        bus = EventBus()
        assert bus.wait_for(since=0, timeout=0.05) == []

    def test_parks_until_a_publish_arrives(self):
        bus = EventBus()
        timer = threading.Timer(0.05, lambda: bus.publish(QueueSaturated(depth=9)))
        timer.start()
        events = bus.wait_for(since=0, timeout=5.0)
        timer.join()
        assert len(events) == 1 and events[0].kind == "queue_saturated"


class TestStats:
    def test_counters_by_kind(self):
        bus = EventBus()
        bus.publish(_request(0))
        bus.publish(_request(1))
        bus.publish(WorkerDead(slot=0))
        stats = bus.stats()
        assert stats["published"] == 3
        assert stats["cursor"] == 3
        assert stats["by_kind"] == {"request_done": 2, "worker_dead": 1}
        assert stats["dropped"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EventBus(history=0)
        with pytest.raises(ValueError):
            EventBus().subscribe(maxlen=0)
