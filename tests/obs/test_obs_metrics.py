"""Reservoir sampling, the metrics ring buffer, the watchdog and the sampler."""

import numpy as np
import pytest

from repro.obs.bus import EventBus
from repro.obs.metrics import LatencyReservoir, MetricsStore, Sampler, Watchdog


class TestLatencyReservoir:
    def test_below_capacity_keeps_everything_exactly(self):
        reservoir = LatencyReservoir(capacity=8)
        reservoir.extend([1.0, 2.0, 3.0])
        assert sorted(reservoir.values()) == [1.0, 2.0, 3.0]
        assert reservoir.dropped == 0

    def test_memory_is_bounded_and_drops_are_counted(self):
        reservoir = LatencyReservoir(capacity=16)
        reservoir.extend(float(n) for n in range(10_000))
        assert len(reservoir) == 16
        assert reservoir.seen == 10_000
        assert reservoir.dropped == 10_000 - 16

    def test_is_deterministic_for_a_seed(self):
        a, b = LatencyReservoir(16, seed=3), LatencyReservoir(16, seed=3)
        stream = [float(n) for n in range(500)]
        a.extend(stream)
        b.extend(stream)
        assert np.array_equal(a.values(), b.values())

    def test_sample_is_roughly_uniform(self):
        # Offer 0..999; a uniform sample's mean stays near the stream mean.
        reservoir = LatencyReservoir(capacity=200, seed=0)
        reservoir.extend(float(n) for n in range(1000))
        assert 350 < float(np.mean(reservoir.values())) < 650

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)


class TestMetricsStore:
    def test_keeps_only_numeric_fields(self):
        store = MetricsStore(capacity=4, clock=lambda: 10.0)
        row = store.add({"requests_total": 3, "backend": "fvm", "ok": True, "p99_ms": 1.5})
        assert row == {"ts": 10.0, "requests_total": 3.0, "p99_ms": 1.5}

    def test_ring_buffer_is_bounded(self):
        store = MetricsStore(capacity=3, clock=lambda: 0.0)
        for n in range(10):
            store.add({"requests_total": n}, ts=float(n))
        assert len(store) == 3
        assert [r["ts"] for r in store.samples()] == [7.0, 8.0, 9.0]
        assert store.stats() == {"capacity": 3, "samples": 3, "added": 10}

    def test_window_filters_by_timestamp(self):
        store = MetricsStore(capacity=16)
        for second in range(10):
            store.add({"requests_total": second}, ts=float(second))
        recent = store.samples(window_s=2.0)
        assert [r["ts"] for r in recent] == [7.0, 8.0, 9.0]

    def test_rollup_turns_counters_into_deltas_and_rps(self):
        store = MetricsStore(capacity=16)
        store.add({"requests_total": 100, "shed_total": 1, "queue_depth": 0,
                   "p99_ms": 5.0, "workers_alive": 4}, ts=0.0)
        store.add({"requests_total": 130, "shed_total": 1, "queue_depth": 7,
                   "p99_ms": 6.0, "workers_alive": 3}, ts=10.0)
        store.add({"requests_total": 160, "shed_total": 4, "queue_depth": 2,
                   "p99_ms": 8.0, "workers_alive": 4}, ts=20.0)
        rollup = store.rollup(window_s=60.0)
        assert rollup["samples"] == 3
        assert rollup["requests"] == 60.0
        assert rollup["shed"] == 3.0
        assert rollup["rps"] == 3.0  # 60 requests over a 20 s span
        assert rollup["p99_ms"] == 8.0  # latest value, already an aggregate
        assert rollup["queue_depth"] == 2.0 and rollup["queue_depth_max"] == 7.0
        assert rollup["workers_alive"] == 4.0 and rollup["workers_alive_min"] == 3.0

    def test_rollup_of_empty_store(self):
        assert MetricsStore().rollup() == {"window_s": 60.0, "samples": 0}

    def test_rows_column_ordering(self):
        store = MetricsStore()
        store.add({"b": 1, "a": 2}, ts=1.0)
        dump = store.rows()
        assert dump["fields"] == ["ts", "a", "b"]
        assert dump["samples"][0]["a"] == 2.0


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestWatchdog:
    def test_queue_saturation_fires_once_with_hysteresis(self):
        bus = EventBus()
        dog = Watchdog(bus, max_queue=10, saturation_fraction=0.8)
        assert dog.observe({"queue_depth": 7}) == []
        [event] = dog.observe({"queue_depth": 9})
        assert event.kind == "queue_saturated"
        assert event.source == "watchdog"
        assert (event.depth, event.max_queue) == (9, 10)
        # Still saturated: edge-triggered, no repeat.
        assert dog.observe({"queue_depth": 10}) == []
        # Dip below the threshold but not below half of it: still armed off.
        assert dog.observe({"queue_depth": 6}) == []
        assert dog.observe({"queue_depth": 9}) == []
        # Clear below half the threshold, then re-fire.
        assert dog.observe({"queue_depth": 2}) == []
        [again] = dog.observe({"queue_depth": 9})
        assert again.kind == "queue_saturated"
        assert dog.alerts == 2
        assert bus.stats()["by_kind"] == {"queue_saturated": 2}

    def test_sample_max_queue_overrides_constructor(self):
        dog = Watchdog(max_queue=None)
        assert dog.observe({"queue_depth": 100}) == []  # unbounded queue: no rule
        [event] = dog.observe({"queue_depth": 100, "max_queue": 100})
        assert event.kind == "queue_saturated"

    def test_worker_death_fires_on_count_increase(self):
        dog = Watchdog()
        assert dog.observe({"workers_dead": 0}) == []
        [event] = dog.observe({"workers_dead": 1})
        assert event.kind == "worker_dead" and event.slot == -1
        assert dog.observe({"workers_dead": 1}) == []
        [again] = dog.observe({"workers_dead": 2})
        assert again.kind == "worker_dead"

    def test_flatline_fires_after_idle_threshold_on_fake_clock(self):
        clock = FakeClock()
        dog = Watchdog(flatline_after_s=5.0, clock=clock)
        assert dog.observe({"requests_total": 10, "queue_depth": 3}) == []
        clock.now = 4.0
        assert dog.observe({"requests_total": 10, "queue_depth": 3}) == []
        clock.now = 6.0
        [event] = dog.observe({"requests_total": 10, "queue_depth": 3})
        assert event.kind == "throughput_flatlined"
        assert event.idle_s == 6.0 and event.queue_depth == 3
        # Edge-triggered while still stuck.
        clock.now = 9.0
        assert dog.observe({"requests_total": 10, "queue_depth": 3}) == []
        # Progress re-arms; a fresh stall fires again.
        clock.now = 10.0
        assert dog.observe({"requests_total": 11, "queue_depth": 3}) == []
        clock.now = 16.0
        [again] = dog.observe({"requests_total": 11, "queue_depth": 2})
        assert again.kind == "throughput_flatlined"

    def test_flatline_needs_queued_demand(self):
        clock = FakeClock()
        dog = Watchdog(flatline_after_s=5.0, clock=clock)
        dog.observe({"requests_total": 10, "queue_depth": 0})
        clock.now = 100.0
        # Idle with an empty queue is just a quiet service, not an incident.
        assert dog.observe({"requests_total": 10, "queue_depth": 0}) == []

    def test_breaker_opening_fires_per_new_backend(self):
        dog = Watchdog()
        assert dog.observe({"open_breakers": []}) == []
        [event] = dog.observe({"open_breakers": ["fvm"]})
        assert event.kind == "breaker_transition" and event.backend == "fvm"
        assert dog.observe({"open_breakers": ["fvm"]}) == []
        [other] = dog.observe({"open_breakers": ["fvm", "hotspot"]})
        assert other.backend == "hotspot"
        # Close then re-open fires again.
        assert dog.observe({"open_breakers": []}) == []
        [again] = dog.observe({"open_breakers": ["fvm"]})
        assert again.backend == "fvm"

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog(saturation_fraction=0.0)
        with pytest.raises(ValueError):
            Watchdog(flatline_after_s=0.0)


class TestSampler:
    def test_tick_feeds_store_and_watchdog(self):
        store = MetricsStore()
        dog = Watchdog(max_queue=10)
        sampler = Sampler(lambda: {"requests_total": 5, "queue_depth": 9},
                          store, watchdog=dog, interval_s=60.0)
        sampler.tick()
        assert len(store) == 1
        assert dog.alerts == 1  # queue saturation seen on the first sample
        health = sampler.health()
        assert health["ticks"] == 1 and health["errors"] == 0
        assert health["alive"] is False  # never started as a thread

    def test_snapshot_errors_are_counted_not_raised(self):
        store = MetricsStore()

        def broken():
            raise RuntimeError("stats backend exploded")

        sampler = Sampler(broken, store, interval_s=60.0)
        sampler.tick()
        sampler.tick()
        assert sampler.health()["errors"] == 2
        assert len(store) == 0

    def test_thread_lifecycle_is_idempotent(self):
        store = MetricsStore()
        sampler = Sampler(lambda: {"requests_total": 1}, store, interval_s=0.01)
        sampler.start()
        sampler.start()
        assert sampler.alive
        sampler.stop()
        sampler.stop()
        assert not sampler.alive

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            Sampler(lambda: {}, MetricsStore(), interval_s=0.0)
