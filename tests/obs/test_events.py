"""The typed event catalog: construction, validation, wire round-trips."""

import dataclasses

import pytest

from repro.obs.events import (
    ALERT_KINDS,
    EVENT_KINDS,
    BatchDispatched,
    BreakerTransition,
    CacheEviction,
    QueueSaturated,
    RequestDone,
    TelemetryEvent,
    ThroughputFlatlined,
    WorkerDead,
    WorkerRetry,
    event_from_json,
)


class TestCatalog:
    def test_registry_covers_every_subclass(self):
        expected = {
            "request_done": RequestDone,
            "batch_dispatched": BatchDispatched,
            "worker_dead": WorkerDead,
            "worker_retry": WorkerRetry,
            "breaker_transition": BreakerTransition,
            "queue_saturated": QueueSaturated,
            "throughput_flatlined": ThroughputFlatlined,
            "cache_eviction": CacheEviction,
        }
        assert EVENT_KINDS == expected

    def test_alert_kinds_are_registered_kinds(self):
        assert ALERT_KINDS <= set(EVENT_KINDS)
        assert "request_done" not in ALERT_KINDS
        assert "worker_dead" in ALERT_KINDS

    def test_is_alert_property_matches_alert_kinds(self):
        assert WorkerDead(slot=0).is_alert
        assert QueueSaturated(depth=8, max_queue=8).is_alert
        assert not RequestDone(request_id="r1").is_alert
        assert not CacheEviction(cause="ttl", key="k").is_alert


class TestValidation:
    def test_request_done_rejects_unknown_status(self):
        with pytest.raises(ValueError, match="status"):
            RequestDone(request_id="r1", status="weird")

    def test_breaker_transition_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            BreakerTransition(backend="fvm", from_state="closed", to_state="exploded")

    def test_cache_eviction_rejects_unknown_cause(self):
        with pytest.raises(ValueError, match="cause"):
            CacheEviction(cause="cosmic-rays", key="k")

    def test_worker_retry_requires_positive_attempts(self):
        with pytest.raises(ValueError):
            WorkerRetry(slot=0, attempts=0)


class TestWireFormat:
    def test_to_json_carries_kind_and_every_field(self):
        event = RequestDone(
            request_id="r1", trace_id="t-1", chip="chip1", resolution=16,
            backend="fvm", status="ok", latency_ms=12.5, batch_size=3,
        )
        body = event.to_json()
        assert body["kind"] == "request_done"
        field_names = {f.name for f in dataclasses.fields(event)}
        assert field_names <= set(body)

    def test_round_trip_preserves_payload(self):
        original = WorkerRetry(slot=2, attempts=3, state_key="fvm/chip1/16",
                               reason="worker died")
        original.seq = 17
        original.ts = 123.5
        original.source = "plane"
        restored = event_from_json(original.to_json())
        assert isinstance(restored, WorkerRetry)
        assert restored == original
        assert (restored.seq, restored.ts, restored.source) == (17, 123.5, "plane")

    def test_from_json_ignores_unknown_fields(self):
        body = WorkerDead(slot=1, exit_code=-9).to_json()
        body["added_in_a_future_version"] = True
        restored = event_from_json(body)
        assert isinstance(restored, WorkerDead)
        assert restored.slot == 1

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            event_from_json({"kind": "not_a_kind"})

    def test_base_event_not_registered(self):
        assert TelemetryEvent.kind not in EVENT_KINDS
