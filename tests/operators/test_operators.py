"""Tests for the operator models: FNO, U-FNO, SAU-FNO, DeepOHeat, GAR."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.operators import (
    DeepOHeatModel,
    FNO2d,
    GARRegressor,
    SAUFNO2d,
    UFNO2d,
    build_operator,
    coordinate_channels,
    OPERATOR_REGISTRY,
)

_TINY = dict(width=8, modes1=3, modes2=3)


class TestCoordinateChannels:
    def test_shape_and_range(self):
        coords = coordinate_channels(2, 6, 9)
        assert coords.shape == (2, 2, 6, 9)
        assert coords.min() > 0.0 and coords.max() < 1.0

    def test_resolution_consistency(self):
        coarse = coordinate_channels(1, 4, 4)[0, 0]
        fine = coordinate_channels(1, 8, 8)[0, 0]
        # Cell-centre convention: the coarse grid samples the same [0, 1] span.
        assert abs(coarse.mean() - fine.mean()) < 1e-6


class TestFNOFamily:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FNO2d(2, 3, num_layers=2, **_TINY),
            lambda: UFNO2d(2, 3, num_fourier_layers=1, num_ufourier_layers=1,
                           unet_base_channels=4, unet_levels=1, **_TINY),
            lambda: SAUFNO2d(2, 3, num_fourier_layers=1, num_ufourier_layers=1,
                             unet_base_channels=4, unet_levels=1, attention_dim=4, **_TINY),
        ],
    )
    def test_forward_shapes(self, factory, rng):
        model = factory()
        x = Tensor(rng.standard_normal((2, 2, 12, 12)).astype(np.float32))
        assert model(x).shape == (2, 3, 12, 12)

    def test_wrong_channel_count_raises(self, rng):
        model = FNO2d(2, 2, num_layers=1, **_TINY)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((1, 3, 10, 10))))

    def test_mesh_invariance_of_fno(self, rng):
        """An FNO evaluated at a finer resolution produces a consistent field."""
        model = FNO2d(1, 1, num_layers=2, use_coordinates=True, **_TINY)
        xs_lo = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        xs_hi = np.linspace(0, 2 * np.pi, 32, endpoint=False)
        field_lo = (np.sin(xs_lo)[None, :] * np.cos(xs_lo)[:, None])[None, None]
        field_hi = (np.sin(xs_hi)[None, :] * np.cos(xs_hi)[:, None])[None, None]
        out_lo = model.predict(field_lo.astype(np.float32))
        out_hi = model.predict(field_hi.astype(np.float32))
        assert out_hi.shape == (1, 1, 32, 32)
        np.testing.assert_allclose(out_lo[0, 0], out_hi[0, 0, ::2, ::2], atol=0.25)

    def test_sau_fno_attention_placements(self, rng):
        for placement, expected_blocks in [("none", 0), ("last", 1), ("all", 2)]:
            model = SAUFNO2d(
                1, 1, num_fourier_layers=0, num_ufourier_layers=2,
                unet_base_channels=4, unet_levels=1, attention_placement=placement,
                attention_dim=4, **_TINY,
            )
            assert len(model.attention_blocks) == expected_blocks
            out = model(Tensor(rng.standard_normal((1, 1, 10, 10)).astype(np.float32)))
            assert out.shape == (1, 1, 10, 10)

    def test_sau_fno_linear_attention(self, rng):
        model = SAUFNO2d(
            1, 1, num_ufourier_layers=1, unet_base_channels=4, unet_levels=1,
            attention_type="linear", attention_dim=4, **_TINY,
        )
        assert model(Tensor(rng.standard_normal((1, 1, 12, 12)).astype(np.float32))).shape == (1, 1, 12, 12)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SAUFNO2d(1, 1, attention_placement="sometimes", **_TINY)
        with pytest.raises(ValueError):
            SAUFNO2d(1, 1, attention_type="quadratic", **_TINY)
        with pytest.raises(ValueError):
            FNO2d(1, 1, num_layers=0, **_TINY)
        with pytest.raises(ValueError):
            UFNO2d(1, 1, num_ufourier_layers=0, **_TINY)

    def test_parameter_counts_increase_with_components(self):
        fno = FNO2d(2, 2, num_layers=2, **_TINY)
        ufno = UFNO2d(2, 2, num_fourier_layers=1, num_ufourier_layers=1,
                      unet_base_channels=4, unet_levels=1, **_TINY)
        sau = SAUFNO2d(2, 2, num_fourier_layers=1, num_ufourier_layers=1,
                       unet_base_channels=4, unet_levels=1, attention_dim=4, **_TINY)
        assert ufno.num_parameters() > fno.num_parameters()
        assert sau.num_parameters() > ufno.num_parameters()

    def test_gradients_reach_every_parameter_of_sau_fno(self, rng):
        model = SAUFNO2d(1, 1, num_fourier_layers=1, num_ufourier_layers=1,
                         unet_base_channels=4, unet_levels=1, attention_dim=4, **_TINY)
        x = Tensor(rng.standard_normal((2, 1, 8, 8)).astype(np.float32))
        (model(x) ** 2).mean().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradients: {missing}"

    def test_predict_batches_match_forward(self, rng):
        model = FNO2d(1, 1, num_layers=1, **_TINY)
        inputs = rng.standard_normal((5, 1, 8, 8)).astype(np.float32)
        batched = model.predict(inputs, batch_size=2)
        full = model.predict(inputs, batch_size=5)
        np.testing.assert_allclose(batched, full, rtol=1e-5)


class TestDeepOHeat:
    def test_forward_shape(self, rng):
        model = DeepOHeatModel(2, 3, sensor_resolution=8, latent_dim=16,
                               branch_hidden=(32,), trunk_hidden=(16,))
        out = model(Tensor(rng.standard_normal((4, 2, 10, 10)).astype(np.float32)))
        assert out.shape == (4, 3, 10, 10)

    def test_resolution_flexibility(self, rng):
        model = DeepOHeatModel(1, 1, sensor_resolution=8, latent_dim=8,
                               branch_hidden=(16,), trunk_hidden=(16,))
        for resolution in (8, 12, 20):
            out = model.predict(rng.standard_normal((1, 1, resolution, resolution)).astype(np.float32))
            assert out.shape == (1, 1, resolution, resolution)

    def test_channel_check(self, rng):
        model = DeepOHeatModel(2, 1)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((1, 3, 8, 8))))

    def test_gradients_flow(self, rng):
        model = DeepOHeatModel(1, 1, sensor_resolution=4, latent_dim=8,
                               branch_hidden=(8,), trunk_hidden=(8,))
        x = Tensor(rng.standard_normal((2, 1, 6, 6)).astype(np.float32))
        (model(x) ** 2).mean().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestGAR:
    def _data(self, rng, n=140, resolution=6):
        inputs = rng.standard_normal((n, 1, resolution, resolution))
        # A linear "solver": smoothed input plus a constant offset.
        kernel = np.ones((3, 3)) / 9.0
        targets = np.zeros_like(inputs)
        for i in range(n):
            padded = np.pad(inputs[i, 0], 1, mode="edge")
            for r in range(resolution):
                for c in range(resolution):
                    targets[i, 0, r, c] = (padded[r:r + 3, c:c + 3] * kernel).sum()
        return inputs, targets + 300.0

    def test_fits_linear_map_well(self, rng):
        inputs, targets = self._data(rng)
        model = GARRegressor(n_components=36, alpha=1e-8)
        model.fit(inputs[:120], targets[:120])
        prediction = model.predict(inputs[120:])
        error = np.abs(prediction - targets[120:]).mean()
        assert error < 0.05

    def test_multi_fidelity_fusion_improves_over_inputs_alone(self, rng):
        inputs, targets = self._data(rng)
        low_fidelity = targets + rng.standard_normal(targets.shape) * 0.05
        fused = GARRegressor(n_components=36, alpha=1e-8)
        fused.fit(inputs[:120], targets[:120], low_fidelity=low_fidelity[:120])
        prediction = fused.predict(inputs[120:], low_fidelity=low_fidelity[120:])
        assert np.abs(prediction - targets[120:]).mean() < 0.1

    def test_unfitted_predict_raises(self, rng):
        with pytest.raises(RuntimeError):
            GARRegressor().predict(rng.standard_normal((2, 1, 4, 4)))

    def test_shape_mismatch_raises(self, rng):
        model = GARRegressor(n_components=4)
        model.fit(rng.standard_normal((6, 1, 4, 4)), rng.standard_normal((6, 1, 4, 4)))
        with pytest.raises(ValueError):
            model.predict(rng.standard_normal((2, 1, 5, 5)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GARRegressor(n_components=0)
        with pytest.raises(ValueError):
            GARRegressor(alpha=0.0)


class TestFactory:
    def test_registry_contains_all_baselines(self):
        assert set(OPERATOR_REGISTRY) == {"fno", "ufno", "sau_fno", "deepoheat", "gar"}

    @pytest.mark.parametrize("name", ["fno", "ufno", "sau_fno", "deepoheat", "gar"])
    def test_build_every_operator(self, name, rng):
        model = build_operator(
            name, 2, 2,
            {"width": 8, "modes1": 3, "modes2": 3, "unet_base_channels": 4,
             "unet_levels": 1, "attention_dim": 4, "latent_dim": 8,
             "sensor_resolution": 4, "n_components": 4},
            rng,
        )
        assert model is not None

    def test_name_normalisation_and_unknown(self, rng):
        assert build_operator("SAU-FNO", 1, 1, {"width": 8, "modes1": 2, "modes2": 2,
                                                "unet_base_channels": 4, "unet_levels": 1,
                                                "attention_dim": 4}, rng) is not None
        with pytest.raises(KeyError):
            build_operator("transformer", 1, 1)


class TestOperatorPersistence:
    """Self-describing weights: config embedded in the .npz by Module.save."""

    def test_build_operator_records_construction_config(self, rng):
        model = build_operator("fno", 2, 3, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        assert model.config["operator"] == "fno"
        assert model.config["in_channels"] == 2
        assert model.config["out_channels"] == 3
        assert model.config["options"]["width"] == 8

    def test_load_operator_roundtrip_without_respecifying_architecture(self, tmp_path, rng):
        from repro.operators.factory import load_operator

        model = build_operator("fno", 2, 2, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        path = tmp_path / "weights.npz"
        model.save(str(path))

        loaded = load_operator(str(path))
        assert loaded.name == "fno"
        assert loaded.options == {"width": 8, "modes1": 3, "modes2": 3}
        x = rng.standard_normal((2, 2, 12, 12)).astype(np.float32)
        np.testing.assert_allclose(loaded.model.predict(x), model.predict(x), atol=0.0)

    def test_save_operator_bundles_normalizers_and_provenance(self, tmp_path, rng):
        from repro.data.dataset import Normalizer
        from repro.operators.factory import load_operator, save_operator

        model = build_operator("fno", 2, 2, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        data = rng.standard_normal((4, 2, 8, 8)) * 5.0 + 300.0
        in_norm = Normalizer().fit(data)
        out_norm = Normalizer().fit(data + 40.0)
        path = tmp_path / "served.npz"
        save_operator(model, str(path), input_normalizer=in_norm,
                      output_normalizer=out_norm, chip_name="chip1", resolution=8)

        loaded = load_operator(str(path))
        assert loaded.chip_name == "chip1" and loaded.resolution == 8
        assert loaded.has_normalizers
        np.testing.assert_allclose(loaded.input_normalizer.mean, in_norm.mean)
        np.testing.assert_allclose(loaded.output_normalizer.std, out_norm.std)
        # predict() de-normalises: outputs live on the target scale, not ~N(0,1).
        prediction = loaded.predict(data.astype(np.float32))
        assert prediction.mean() > 100.0

    def test_load_operator_without_config_errors_clearly(self, tmp_path, rng):
        from repro.operators.factory import load_operator

        model = build_operator("fno", 2, 2, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        path = tmp_path / "legacy.npz"
        np.savez(str(path), **model.state_dict())  # pre-config archive
        with pytest.raises(ValueError, match="no embedded architecture config"):
            load_operator(str(path))

    def test_legacy_load_method_ignores_metadata_keys(self, tmp_path, rng):
        model = build_operator("fno", 2, 2, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        path = tmp_path / "weights.npz"
        model.save(str(path))
        clone = build_operator("fno", 2, 2, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        clone.load(str(path))  # must not trip over __config__
        x = rng.standard_normal((1, 2, 10, 10)).astype(np.float32)
        np.testing.assert_allclose(clone.predict(x), model.predict(x), atol=0.0)

    def test_save_rejects_extra_key_colliding_with_config(self, tmp_path, rng):
        model = build_operator("fno", 2, 2, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        with pytest.raises(ValueError, match="reserved config entry"):
            model.save(str(tmp_path / "clash.npz"), extra={"config": np.zeros(2)})
