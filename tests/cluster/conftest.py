"""Shared fixtures for the cluster tests: a scriptable stub replica.

The stub speaks just enough of the replica HTTP surface (``/healthz``,
``/warm_up``, ``/solve``, ``/stats``, ``/metrics``, ``/chips``) for the
router and membership tests to exercise placement, draining, warm-up and
aggregation without booting the real solver stack.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest


class _StubHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args):
        pass

    def _reply(self, status, body, content_type="application/json"):
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):
        stub = self.server.stub
        path = self.path.split("?", 1)[0]
        with stub.lock:
            stub.requests.append(("GET", self.path))
        if path == "/healthz":
            self._reply(200 if stub.healthy else 503, {"status": "ok"})
        elif path == "/stats":
            self._reply(200, stub.stats_body)
        elif path == "/metrics":
            self._reply(200, stub.metrics_text.encode(),
                        content_type="text/plain; version=0.0.4")
        elif path == "/chips":
            self._reply(200, {"chips": [{"name": "chip1"}]})
        else:
            self._reply(404, {"error": "nope"})

    def do_POST(self):
        stub = self.server.stub
        length = int(self.headers.get("Content-Length", 0))
        body = json.loads(self.rfile.read(length)) if length else {}
        with stub.lock:
            stub.requests.append(("POST", self.path, body))
        if self.path == "/warm_up":
            keys = body.get("keys", [])
            with stub.lock:
                stub.warmed_keys.extend(keys)
            self._reply(200, {"warmed": [f"k{i}" for i in range(len(keys))],
                              "errors": {}})
        elif self.path in ("/solve", "/solve_transient"):
            self._reply(200, {"backend": body.get("backend", "fvm"),
                              "max_K": 300.0, "served_by": stub.name})
        else:
            self._reply(404, {"error": "nope"})


class StubReplica:
    """One scriptable replica: start/stop, flip health, inspect traffic."""

    def __init__(self):
        self.lock = threading.Lock()
        self.requests = []
        self.warmed_keys = []
        self.healthy = True
        self.stats_body = {
            "total_requests": 1, "rejected_requests": 0, "shed_requests": 0,
            "throughput_rps": 1.0, "queue_depth": 0,
            "backends": {"fvm": {"requests": 1, "batches": 1, "errors": 0,
                                 "latency_ms": {"p50": 5.0}}},
        }
        self.metrics_text = (
            "# HELP repro_requests_total Requests answered by the engine.\n"
            "# TYPE repro_requests_total counter\n"
            "repro_requests_total 1\n"
            'repro_requests_total{chip="chip1",resolution="16",backend="fvm"} 1\n'
        )
        self._httpd = None
        self._thread = None
        self._port = 0

    @property
    def url(self):
        return f"http://127.0.0.1:{self._port}"

    @property
    def name(self):
        return f"127.0.0.1:{self._port}"

    def start(self):
        self._httpd = ThreadingHTTPServer(("127.0.0.1", self._port), _StubHandler)
        self._httpd.daemon_threads = True
        self._httpd.stub = self
        self._port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join()
            self._httpd = None

    def post_count(self, path):
        with self.lock:
            return sum(1 for r in self.requests if r[0] == "POST" and r[1] == path)


@pytest.fixture
def stub_replicas():
    """Three running stub replicas, stopped at teardown."""
    stubs = [StubReplica().start() for _ in range(3)]
    yield stubs
    for stub in stubs:
        stub.stop()
