"""Unit tests of the rendezvous-hash placement primitives."""

import pytest

from repro.cluster.hashing import owner, rank, rendezvous_score

REPLICAS = ["10.0.0.1:8471", "10.0.0.2:8471", "10.0.0.3:8471"]


def _keys(count=200):
    chips = ["chip1", "chip2", "chip3"]
    backends = ["fvm", "hotspot", "operator", "transient"]
    return [
        (chips[i % 3], 16 + (i % 7) * 8, backends[i % 4]) for i in range(count)
    ]


class TestScore:
    def test_deterministic(self):
        assert rendezvous_score("a", ("chip1", 32, "fvm")) == rendezvous_score(
            "a", ("chip1", 32, "fvm")
        )

    def test_differs_by_replica_and_key(self):
        key = ("chip1", 32, "fvm")
        assert rendezvous_score("a", key) != rendezvous_score("b", key)
        assert rendezvous_score("a", key) != rendezvous_score("a", ("chip2", 32, "fvm"))


class TestOwner:
    def test_stable_across_calls_and_orderings(self):
        for key in _keys(50):
            assert owner(key, REPLICAS) == owner(key, list(reversed(REPLICAS)))

    def test_single_member_owns_everything(self):
        for key in _keys(20):
            assert owner(key, ["only:1"]) == "only:1"

    def test_empty_membership_raises(self):
        with pytest.raises(ValueError):
            owner(("chip1", 32, "fvm"), [])

    def test_removal_moves_only_the_lost_replicas_keys(self):
        """The rendezvous property: draining a replica never reshuffles
        keys between the survivors."""
        keys = _keys()
        before = {key: owner(key, REPLICAS) for key in keys}
        survivors = [r for r in REPLICAS if r != REPLICAS[1]]
        moved = 0
        for key in keys:
            after = owner(key, survivors)
            if before[key] == REPLICAS[1]:
                assert after in survivors
                moved += 1
            else:
                assert after == before[key]
        assert moved > 0  # the drained replica owned a real slice

    def test_addition_moves_keys_only_to_the_new_replica(self):
        keys = _keys()
        before = {key: owner(key, REPLICAS) for key in keys}
        grown = REPLICAS + ["10.0.0.4:8471"]
        for key in keys:
            after = owner(key, grown)
            if after != before[key]:
                assert after == "10.0.0.4:8471"

    def test_distribution_is_roughly_balanced(self):
        keys = _keys(600)
        counts = {replica: 0 for replica in REPLICAS}
        for key in keys:
            counts[owner(key, REPLICAS)] += 1
        # CRC32 is not a perfect hash, but each of 3 replicas should own a
        # substantial share of 600 keys (an even split would be 200 each).
        assert all(count >= 100 for count in counts.values()), counts


class TestRank:
    def test_rank_head_is_owner(self):
        for key in _keys(30):
            assert rank(key, REPLICAS)[0] == owner(key, REPLICAS)

    def test_rank_is_a_permutation_of_the_membership(self):
        ordering = rank(("chip1", 32, "fvm"), REPLICAS)
        assert sorted(ordering) == sorted(REPLICAS)

    def test_retry_peer_is_the_post_drain_owner(self):
        """rank()[1] is exactly who owns the key once rank()[0] drains —
        the router's retry lands where the key remaps."""
        for key in _keys(50):
            first, second = rank(key, REPLICAS)[:2]
            survivors = [r for r in REPLICAS if r != first]
            assert owner(key, survivors) == second
