"""Distributed dataset generation: sharding, merging, bitwise identity."""

import numpy as np
import pytest

from repro.cluster.fleetgen import (
    generate_shard,
    merge_shards,
    spec_from_payload,
    spec_to_payload,
)
from repro.data.generation import DatasetSpec, generate_dataset

SPEC = DatasetSpec(chip_name="chip1", resolution=10, num_samples=10, seed=11)
BATCH = 3  # 10 samples -> batches of 3,3,3,1 — exercises the ragged tail


class TestSpecPayload:
    def test_round_trip(self):
        spec = DatasetSpec(
            chip_name="chip2", resolution=16, num_samples=4, seed=5,
            total_power_range_W=(20.0, 80.0),
        )
        assert spec_from_payload(spec_to_payload(spec)) == spec

    def test_round_trip_without_power_range(self):
        assert spec_from_payload(spec_to_payload(SPEC)) == SPEC


class TestSharding:
    def test_merged_shards_match_single_host_bitwise(self):
        blobs = [
            generate_shard(SPEC, index, 2, batch_size=BATCH) for index in range(2)
        ]
        merged = merge_shards(SPEC, blobs, batch_size=BATCH)
        local = generate_dataset(SPEC, batch_size=BATCH)
        assert np.array_equal(merged.inputs, local.inputs)
        assert np.array_equal(merged.targets, local.targets)
        assert np.array_equal(
            merged.metadata["total_power_W"], local.metadata["total_power_W"]
        )

    def test_single_shard_is_the_whole_dataset(self):
        blob = generate_shard(SPEC, 0, 1, batch_size=BATCH)
        merged = merge_shards(SPEC, [blob], batch_size=BATCH)
        local = generate_dataset(SPEC, batch_size=BATCH)
        assert np.array_equal(merged.targets, local.targets)

    def test_shard_count_does_not_change_the_result(self):
        two = merge_shards(
            SPEC,
            [generate_shard(SPEC, i, 2, batch_size=BATCH) for i in range(2)],
            batch_size=BATCH,
        )
        three = merge_shards(
            SPEC,
            [generate_shard(SPEC, i, 3, batch_size=BATCH) for i in range(3)],
            batch_size=BATCH,
        )
        assert np.array_equal(two.targets, three.targets)
        assert np.array_equal(two.inputs, three.inputs)

    def test_shards_partition_the_batches(self):
        """Each global batch is produced by exactly one shard."""
        import io

        seen = set()
        for index in range(3):
            blob = generate_shard(SPEC, index, 3, batch_size=BATCH)
            with np.load(io.BytesIO(blob)) as archive:
                batches = {
                    int(name.split("_")[1])
                    for name in archive.files
                    if name.startswith("targets_")
                }
            assert not (batches & seen)
            seen |= batches
        assert seen == {0, 1, 2, 3}  # ceil(10 / 3) batches

    def test_shard_index_out_of_range(self):
        with pytest.raises(ValueError):
            generate_shard(SPEC, 2, 2, batch_size=BATCH)
        with pytest.raises(ValueError):
            generate_shard(SPEC, -1, 2, batch_size=BATCH)


class TestMergeValidation:
    def test_missing_batch_is_an_error(self):
        blob = generate_shard(SPEC, 0, 2, batch_size=BATCH)
        with pytest.raises(ValueError, match="missing"):
            merge_shards(SPEC, [blob], batch_size=BATCH)

    def test_duplicate_batch_is_an_error(self):
        blob = generate_shard(SPEC, 0, 2, batch_size=BATCH)
        with pytest.raises(ValueError, match="two shards"):
            merge_shards(
                SPEC,
                [blob, blob, generate_shard(SPEC, 1, 2, batch_size=BATCH)],
                batch_size=BATCH,
            )
