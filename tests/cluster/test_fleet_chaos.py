"""Fleet chaos: kill a replica mid-run, the router answers everything.

In-process twin of ``benchmarks/smoke_fleet.py`` (which SIGKILLs real
processes): two real :class:`ThermalServer` replicas behind a
:class:`FleetRouter`, a closed-loop client stream, one replica torn down
mid-stream and later rebooted on the same port.  Asserts the contract of
the issue: every request answered, answers bitwise-identical to a
single-host solve, the fleet degrades then heals, and re-admission runs
the warm-up replay before traffic.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api.session import ThermalSession
from repro.cluster.membership import DOWN, HEALTHY, WARMING
from repro.cluster.router import FleetRouter
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.server import ThermalServer

RES = 10


def _post(url, body, timeout=60):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _boot_replica(port=0):
    session = ThermalSession()
    engine = MicroBatchEngine(build_backends(session=session), max_wait_ms=1.0)
    server = ThermalServer(engine, port=port, session=session)
    return server.start_background()


def _payloads(member_names):
    """Mixed traffic guaranteed to put group keys on *every* replica.

    Walks candidate ``(chip, resolution, backend)`` keys and keeps the
    first few owned by each member — without this the rendezvous hash can
    (with small membership) place every key on one replica and the drain
    assertions would be vacuous.
    """
    from repro.cluster.hashing import owner

    per_owner = {name: [] for name in member_names}
    for resolution in range(8, 33, 2):
        for chip, backend in (("chip1", "fvm"), ("chip2", "hotspot")):
            key = (chip, resolution, backend)
            own = owner(key, member_names)
            if len(per_owner[own]) < 3:
                per_owner[own].append({
                    "chip": chip,
                    "total_power": 30.0 + resolution,
                    "resolution": resolution,
                    "backend": backend,
                })
        if all(len(group) >= 3 for group in per_owner.values()):
            break
    assert all(per_owner.values()), "candidate keys did not cover the fleet"
    return [case for group in per_owner.values() for case in group]


@pytest.fixture
def fleet():
    """Two real replicas behind a router; tears everything down."""
    replicas = [_boot_replica(), _boot_replica()]
    router = FleetRouter(
        [replica.url for replica in replicas],
        port=0,
        probe_interval_s=30.0,  # probed manually for determinism
        failure_threshold=2,
    )
    router.start_background()
    try:
        yield router, replicas
    finally:
        router.shutdown()
        for replica in replicas:
            try:
                replica.shutdown()
            except Exception:
                pass


def test_replica_death_mid_run_loses_no_request(fleet):
    router, replicas = fleet
    payloads = _payloads(router.membership.healthy_names())
    baseline = {}
    for payload in payloads:
        status, body, _ = _post(router.url + "/solve", payload)
        assert status == 200
        baseline[json.dumps(payload, sort_keys=True)] = body["max_K"]

    # Kill replica 0 the way a SIGKILL presents to the router: its listener
    # and connections go away, so proxied hops see connection errors.
    victim_url = replicas[0].url
    victim_port = replicas[0].port
    victim_name = f"{replicas[0].host}:{victim_port}"
    replicas[0].shutdown()
    router.membership.by_name(victim_name).client.close()

    # Every request is still answered — the victim's slice remaps, the
    # in-flight hop retries on the survivor — and answers stay identical.
    for payload in payloads:
        status, body, headers = _post(router.url + "/solve", payload)
        assert status == 200, body
        assert headers["X-Repro-Replica"] != victim_name
        assert body["max_K"] == baseline[json.dumps(payload, sort_keys=True)]

    health = router.health()
    assert health["status"] == "degraded"
    assert health["healthy_count"] == 1
    victim = router.membership.by_name(victim_name)
    assert victim.state == DOWN

    # Reboot on the same port; the next probe warms it, then re-admits.
    reborn = _boot_replica(port=victim_port)
    try:
        router.membership.probe_once()
        assert victim.state == HEALTHY
        assert [s for _, s in victim.transitions] == [
            HEALTHY, DOWN, WARMING, HEALTHY,
        ]
        # Warm-up ran before re-admission: the rejoined replica's session
        # pools already hold its slice of the seen keys.
        warmed_slice = router._keys_for(victim_name)
        pools = reborn.session.stats()["pools"]
        warm_entries = sum(pool["entries"] for pool in pools.values())
        assert warm_entries >= min(len(warmed_slice), 1)
        health = router.health()
        assert health["status"] == "ok"
        assert health["recoveries"] == 1

        # Traffic flows to the rejoined replica again for its keys.
        seen = set()
        for payload in payloads:
            status, body, headers = _post(router.url + "/solve", payload)
            assert status == 200
            seen.add(headers["X-Repro-Replica"])
            assert body["max_K"] == baseline[json.dumps(payload, sort_keys=True)]
        assert victim_name in seen
    finally:
        reborn.shutdown()


def test_router_solves_match_direct_replica_solves(fleet):
    """Proxying is transparent: byte-for-byte the replica's own answer."""
    router, replicas = fleet
    payload = {"chip": "chip1", "total_power": 42.5, "resolution": RES,
               "include_maps": True}
    status, via_router, headers = _post(router.url + "/solve", payload)
    assert status == 200
    direct_url = next(
        r.url for r in replicas
        if f"{r.host}:{r.port}" == headers["X-Repro-Replica"]
    )
    status, direct, _ = _post(direct_url + "/solve", payload)
    assert status == 200
    for field in ("max_K", "min_K", "mean_K", "backend", "layers"):
        assert via_router.get(field) == direct.get(field)
