"""Router behaviour against scriptable stub replicas: admission, placement,
retry-on-failure, warm-up fan-out, stats/metrics aggregation."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster.hashing import owner
from repro.cluster.router import FleetRouter, _relabel


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read()


@pytest.fixture
def router(stub_replicas):
    """A background router over the three stub replicas (prober off-tempo)."""
    fleet = FleetRouter(
        [stub.url for stub in stub_replicas],
        port=0,
        probe_interval_s=30.0,  # probe manually in the tests
        failure_threshold=2,
    )
    with fleet as running:
        yield running


class TestAdmission:
    def test_malformed_body_bounces_at_the_edge(self, router, stub_replicas):
        status, body, _ = _post(router.url + "/solve", {"chip": "not-a-chip"})
        assert status == 400
        assert "chip" in body["error"]
        assert all(stub.post_count("/solve") == 0 for stub in stub_replicas)

    def test_unknown_backend_bounces(self, router):
        status, body, _ = _post(
            router.url + "/solve",
            {"chip": "chip1", "total_power": 50, "backend": "quantum"},
        )
        assert status == 400

    def test_unknown_path_is_404(self, router):
        status, body, _ = _post(router.url + "/nothing", {"x": 1})
        assert status == 404


class TestPlacement:
    def test_same_key_lands_on_the_same_replica(self, router):
        names = set()
        for _ in range(4):
            _, body, headers = _post(
                router.url + "/solve",
                {"chip": "chip1", "total_power": 50, "resolution": 16},
            )
            names.add(headers["X-Repro-Replica"])
        assert len(names) == 1

    def test_placement_follows_rendezvous_owner(self, router):
        member_names = router.membership.healthy_names()
        _, body, headers = _post(
            router.url + "/solve",
            {"chip": "chip2", "total_power": 40, "resolution": 24},
        )
        assert headers["X-Repro-Replica"] == owner(
            ("chip2", 24, "fvm"), member_names
        )

    def test_transient_routes_by_its_own_key(self, router):
        status, body, headers = _post(
            router.url + "/solve_transient",
            {"chip": "chip1", "resolution": 16, "duration_s": 0.01,
             "dt_s": 0.005, "total_power": 30},
        )
        assert status == 200
        assert headers["X-Repro-Replica"] == owner(
            ("chip1", 16, "transient"), router.membership.healthy_names()
        )


class TestFailover:
    def test_dead_owner_drains_and_retries_on_peer(self, router, stub_replicas):
        payload = {"chip": "chip1", "total_power": 50, "resolution": 16}
        _, _, headers = _post(router.url + "/solve", payload)
        owner_name = headers["X-Repro-Replica"]
        victim = next(s for s in stub_replicas if s.name == owner_name)
        victim.stop()
        # A graceful stub shutdown leaves pooled keep-alive connections
        # draining; drop the router's pool so the next hop dials fresh and
        # sees connection-refused (what a SIGKILLed replica produces —
        # the process-level chaos test covers that path for real).
        router.membership.by_name(owner_name).client.close()
        status, body, headers = _post(router.url + "/solve", payload)
        assert status == 200
        assert headers["X-Repro-Replica"] != owner_name
        # The dead owner was drained on the traffic path, not left healthy.
        assert owner_name not in router.membership.healthy_names()
        stats = router.stats()
        assert stats["router"]["retries"] >= 1
        assert stats["membership"]["status"] == "degraded"

    def test_no_healthy_replicas_is_503(self, router, stub_replicas):
        for replica in router.membership.replicas:
            router.membership.mark_failed(replica)
        status, body, _ = _post(
            router.url + "/solve",
            {"chip": "chip1", "total_power": 50, "resolution": 16},
        )
        assert status == 503


class TestWarmUp:
    def test_warm_fleet_splits_keys_by_owner(self, router, stub_replicas):
        keys = [
            {"chip": "chip1", "resolution": 16, "backend": "fvm"},
            {"chip": "chip2", "resolution": 24, "backend": "fvm"},
            {"chip": "chip3", "resolution": 32, "backend": "hotspot"},
            {"chip": "chip1", "resolution": 40, "backend": "fvm"},
        ]
        status, body, _ = _post(router.url + "/warm_up", {"keys": keys})
        assert status == 200
        assert body["warmed"] == len(keys)
        assert sum(r["keys"] for r in body["replicas"].values()) == len(keys)
        member_names = router.membership.healthy_names()
        for entry in keys:
            key = (entry["chip"], entry["resolution"], entry["backend"])
            expected_owner = owner(key, member_names)
            stub = next(s for s in stub_replicas if s.name == expected_owner)
            assert entry in stub.warmed_keys

    def test_warm_up_body_must_carry_keys_list(self, router):
        status, body, _ = _post(router.url + "/warm_up", {"nope": 1})
        assert status == 400

    def test_rejoin_replays_the_seen_slice(self, router, stub_replicas):
        # Make the router see keys, then drain + recover each stub's owner.
        for resolution in (16, 24, 32, 40, 48):
            _post(router.url + "/solve",
                  {"chip": "chip1", "total_power": 50, "resolution": resolution})
        victim_name = owner(("chip1", 16, "fvm"),
                            router.membership.healthy_names())
        victim_stub = next(s for s in stub_replicas if s.name == victim_name)
        victim = router.membership.by_name(victim_name)
        router.membership.mark_failed(victim)
        before = len(victim_stub.warmed_keys)
        router.membership.probe_once()  # stub alive -> warm then re-admit
        assert victim.state == "healthy"
        replayed = victim_stub.warmed_keys[before:]
        assert {"chip": "chip1", "resolution": 16, "backend": "fvm"} in replayed
        # Only keys this replica owns come back through its warm-up.
        member_names = router.membership.healthy_names()
        for entry in replayed:
            key = (entry["chip"], entry["resolution"], entry["backend"])
            assert owner(key, member_names) == victim_name


class TestAggregation:
    def test_stats_merge_sums_replicas(self, router, stub_replicas):
        stats = router.stats()
        assert stats["total_requests"] == 3  # one canned request per stub
        assert stats["backends"]["fvm"]["requests"] == 3
        assert set(stats["replicas"]) == {s.name for s in stub_replicas}
        assert stats["membership"]["healthy_count"] == 3

    def test_metrics_relabels_and_dedupes(self, router, stub_replicas):
        status, body = _get(router.url + "/metrics")
        text = body.decode()
        assert status == 200
        # HELP/TYPE once per metric even with three replicas contributing.
        assert text.count("# HELP repro_requests_total") == 1
        for stub in stub_replicas:
            assert f'repro_requests_total{{replica="{stub.name}"}} 1' in text
            # Pre-labelled samples get the replica label injected first.
            assert (
                f'repro_requests_total{{replica="{stub.name}",chip="chip1"'
                in text
            )
        assert "repro_router_replicas_healthy 3" in text
        assert "repro_router_replicas_total 3" in text

    def test_healthz_summarizes_fleet(self, router):
        status, body = _get(router.url + "/healthz")
        payload = json.loads(body)
        assert payload["role"] == "router"
        assert payload["status"] == "ok"
        assert payload["member_count"] == 3
        assert len(payload["replicas"]) == 3

    def test_reads_proxy_to_a_replica(self, router):
        status, body = _get(router.url + "/chips")
        assert status == 200
        assert json.loads(body)["chips"]


class TestRelabel:
    def test_bare_sample_gets_wrapped(self):
        lines = _relabel("metric_a 4\n", "r:1", set())
        assert lines == ['metric_a{replica="r:1"} 4']

    def test_labelled_sample_gets_replica_prepended(self):
        lines = _relabel('metric_a{x="y"} 4\n', "r:1", set())
        assert lines == ['metric_a{replica="r:1",x="y"} 4']

    def test_help_type_deduped_across_replicas(self):
        declared = set()
        first = _relabel("# HELP m h\n# TYPE m counter\nm 1\n", "a:1", declared)
        second = _relabel("# HELP m h\n# TYPE m counter\nm 2\n", "b:2", declared)
        assert sum(1 for line in first + second if line.startswith("# HELP")) == 1
        assert sum(1 for line in first + second if line.startswith("# TYPE")) == 1
