"""Membership state machine: probing, draining, warm re-admission."""

import pytest

from repro.cluster.membership import DOWN, HEALTHY, WARMING, Membership


def _membership(stubs, **kwargs):
    kwargs.setdefault("probe_interval_s", 0.05)
    kwargs.setdefault("failure_threshold", 2)
    return Membership([stub.url for stub in stubs], **kwargs)


class TestConstruction:
    def test_needs_at_least_one_url(self):
        with pytest.raises(ValueError, match="at least one replica"):
            Membership([])

    def test_rejects_duplicate_urls(self, stub_replicas):
        url = stub_replicas[0].url
        with pytest.raises(ValueError, match="duplicate"):
            Membership([url, url])

    def test_everyone_starts_healthy(self, stub_replicas):
        membership = _membership(stub_replicas)
        try:
            assert len(membership.healthy()) == 3
            assert membership.describe()["status"] == "ok"
        finally:
            membership.stop()


class TestDraining:
    def test_mark_failed_drains_immediately(self, stub_replicas):
        membership = _membership(stub_replicas)
        try:
            victim = membership.replicas[0]
            membership.mark_failed(victim)
            assert victim.state == DOWN
            assert victim.name not in membership.healthy_names()
            described = membership.describe()
            assert described["status"] == "degraded"
            assert described["drains"] == 1
        finally:
            membership.stop()

    def test_probe_drains_after_threshold_not_before(self, stub_replicas):
        membership = _membership(stub_replicas, failure_threshold=2)
        try:
            stub_replicas[1].stop()  # connection-refused from now on
            membership.probe_once()
            assert membership.replicas[1].state == HEALTHY  # one strike
            membership.probe_once()
            assert membership.replicas[1].state == DOWN  # threshold hit
        finally:
            membership.stop()

    def test_all_down_reports_down(self, stub_replicas):
        membership = _membership(stub_replicas)
        try:
            for replica in membership.replicas:
                membership.mark_failed(replica)
            assert membership.describe()["status"] == "down"
            assert membership.healthy_names() == []
        finally:
            membership.stop()


class TestRecovery:
    def test_recovery_runs_warm_up_before_readmission(self, stub_replicas):
        seen_states = []

        def on_recover(replica):
            seen_states.append(replica.state)
            return True

        membership = _membership(stub_replicas, on_recover=on_recover)
        try:
            victim = membership.replicas[2]
            membership.mark_failed(victim)
            assert victim.state == DOWN
            membership.probe_once()  # the stub still answers /healthz
            assert victim.state == HEALTHY
            # The hook observed the replica in WARMING — admitted only after.
            assert seen_states == [WARMING]
            assert [s for _, s in victim.transitions] == [
                HEALTHY, DOWN, WARMING, HEALTHY,
            ]
            assert membership.describe()["recoveries"] == 1
        finally:
            membership.stop()

    def test_failed_warm_up_keeps_the_replica_down(self, stub_replicas):
        membership = _membership(stub_replicas, on_recover=lambda _r: False)
        try:
            victim = membership.replicas[0]
            membership.mark_failed(victim)
            membership.probe_once()
            assert victim.state == DOWN
            assert membership.describe()["recoveries"] == 0
        finally:
            membership.stop()

    def test_raising_warm_up_keeps_the_replica_down(self, stub_replicas):
        def on_recover(_replica):
            raise RuntimeError("factorization exploded")

        membership = _membership(stub_replicas, on_recover=on_recover)
        try:
            victim = membership.replicas[0]
            membership.mark_failed(victim)
            membership.probe_once()
            assert victim.state == DOWN
        finally:
            membership.stop()

    def test_successful_probe_resets_failure_streak(self, stub_replicas):
        membership = _membership(stub_replicas, failure_threshold=3)
        try:
            victim = membership.replicas[0]
            victim.consecutive_failures = 2
            membership.probe_once()
            assert victim.consecutive_failures == 0
            assert victim.state == HEALTHY
        finally:
            membership.stop()
