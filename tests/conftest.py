"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.chip.cooling import CoolingSpec, HeatSink, HeatSpreader
from repro.chip.floorplan import Floorplan, FloorplanBlock
from repro.chip.layers import Layer
from repro.chip.materials import SILICON, TIM
from repro.chip.stack import ChipStack
from repro.data.dataset import ThermalDataset
from repro.data.generation import DatasetSpec, generate_dataset


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2.0 * eps)
        iterator.iternext()
    return grad


def assert_gradients_close(analytic: np.ndarray, numeric: np.ndarray, tolerance: float = 1e-5):
    """Assert max absolute deviation between gradient estimates is small."""
    analytic = np.asarray(analytic)
    numeric = np.asarray(numeric)
    scale = max(np.abs(numeric).max(), 1.0)
    assert np.abs(analytic - numeric).max() <= tolerance * scale, (
        f"gradient mismatch: max abs diff {np.abs(analytic - numeric).max():.3e}"
    )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_chip() -> ChipStack:
    """A small two-layer chip used by solver/data tests (fast to simulate)."""
    width = height = 8.0
    core_floorplan = Floorplan(
        width,
        height,
        [
            FloorplanBlock("core", 0.0, 4.0, 8.0, 4.0),
            FloorplanBlock("cache", 0.0, 0.0, 8.0, 4.0),
        ],
        name="tiny_core",
    )
    cache_floorplan = Floorplan(
        width,
        height,
        [
            FloorplanBlock("l2_left", 0.0, 0.0, 4.0, 8.0),
            FloorplanBlock("l2_right", 4.0, 0.0, 4.0, 8.0),
        ],
        name="tiny_cache",
    )
    return ChipStack(
        name="tiny",
        die_width_mm=width,
        die_height_mm=height,
        layers=[
            Layer("cache_layer", 0.15, SILICON, cache_floorplan, is_power_layer=True),
            Layer("core_layer", 0.15, SILICON, core_floorplan, is_power_layer=True),
            Layer("tim", 0.02, TIM),
        ],
        cooling=CoolingSpec(
            spreader=HeatSpreader(width_mm=16.0, height_mm=16.0),
            sink=HeatSink(base_width_mm=30.0, base_height_mm=30.0),
        ),
        power_budget_W=(20.0, 40.0),
    )


@pytest.fixture(scope="session")
def tiny_dataset() -> ThermalDataset:
    """A small generated dataset on chip1 shared by training/evaluation tests."""
    spec = DatasetSpec(chip_name="chip1", resolution=16, num_samples=12, seed=3)
    return generate_dataset(spec)
