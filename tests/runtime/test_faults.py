"""Unit tests of the chaos spec grammar and fault-plan bookkeeping."""

import pytest

from repro.runtime.faults import BackendFault, FaultPlan, InjectedFault, WorkerFault


class TestParseGrammar:
    def test_kill_worker(self):
        plan = FaultPlan.parse("kill-worker:0@5")
        assert plan.worker_faults == (WorkerFault(slot=0, kill_after=5),)
        assert plan.backend_faults == ()
        assert plan.has_worker_faults
        assert plan.spec == "kill-worker:0@5"

    def test_drop_result(self):
        plan = FaultPlan.parse("drop-result:1@3")
        assert plan.worker_faults == (WorkerFault(slot=1, drop_results=(3,)),)

    def test_fail_backend(self):
        plan = FaultPlan.parse("fail-backend:fvm@3")
        assert plan.backend_faults == (BackendFault(backend="fvm", fail_first=3),)
        assert not plan.has_worker_faults

    def test_delay_backend(self):
        plan = FaultPlan.parse("delay-backend:hotspot:0.5@2")
        (fault,) = plan.backend_faults
        assert fault.backend == "hotspot"
        assert fault.delay_s == 0.5
        assert fault.delay_first == 2

    def test_combined_spec(self):
        plan = FaultPlan.parse("kill-worker:0@5, fail-backend:transient@3")
        assert plan.worker_fault(0) == WorkerFault(slot=0, kill_after=5)
        assert plan.worker_fault(1) is None
        assert plan.backend_faults == (BackendFault(backend="transient", fail_first=3),)

    def test_directives_on_one_target_merge(self):
        plan = FaultPlan.parse(
            "drop-result:0@1,drop-result:0@4,kill-worker:0@9,"
            "fail-backend:fvm@2,delay-backend:fvm:0.1@5"
        )
        assert plan.worker_faults == (
            WorkerFault(slot=0, kill_after=9, drop_results=(1, 4)),
        )
        (fault,) = plan.backend_faults
        assert (fault.fail_first, fault.delay_s, fault.delay_first) == (2, 0.1, 5)

    @pytest.mark.parametrize(
        "bad",
        [
            "kill-worker:0",          # no @count
            "kill-worker@5",          # no target
            "kill-worker:zero@5",     # non-integer slot
            "kill-worker:-1@5",       # negative slot
            "kill-worker:0@five",     # non-integer count
            "kill-worker:0@-1",       # negative count
            "delay-backend:fvm@3",    # missing seconds operand
            "delay-backend:fvm:fast@3",
            "explode-host:0@1",       # unknown kind
        ],
    )
    def test_bad_directives_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_empty_segments_are_ignored(self):
        plan = FaultPlan.parse("fail-backend:fvm@1,,")
        assert len(plan.backend_faults) == 1


class TestBackendInjection:
    def test_fail_first_n_then_clean(self):
        plan = FaultPlan.parse("fail-backend:fvm@2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.on_backend_solve("fvm")
        plan.on_backend_solve("fvm")  # third call passes
        plan.on_backend_solve("hotspot")  # untargeted backends never fire
        stats = plan.stats()
        assert stats["backends"]["fvm"] == {
            "calls": 3,
            "injected_failures": 2,
            "injected_delays": 0,
        }

    def test_delay_fires_and_is_counted(self):
        plan = FaultPlan.parse("delay-backend:fvm:0.01@1")
        plan.on_backend_solve("fvm")
        plan.on_backend_solve("fvm")
        assert plan.stats()["backends"]["fvm"]["injected_delays"] == 1

    def test_stats_shape_includes_worker_directives(self):
        plan = FaultPlan.parse("kill-worker:1@4,drop-result:1@2")
        assert plan.stats()["worker_faults"] == [
            {"slot": 1, "kill_after": 4, "drop_results": [2]}
        ]
