"""Unit tests of the execution planes (serial / threads / processes)."""

import os
import time

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.runtime import (
    PLANE_KINDS,
    PlaneTask,
    ProcessPlane,
    SerialPlane,
    ThreadPlane,
    create_plane,
)
from repro.runtime.tasks import (
    SolverSpec,
    build_fvm_solver,
    generate_batch,
    ping,
    solver_state_key,
)

RES = 8  # tiny grids: these tests exercise plumbing, not physics


def _ping_tasks(count):
    return [PlaneTask(fn=ping, payload=index) for index in range(count)]


def _solver_task(chip, assignments, affinity=None, resolution=RES):
    spec = SolverSpec(chip=chip, resolution=resolution)
    return PlaneTask(
        fn=generate_batch,
        payload=assignments,
        state_key=solver_state_key(spec),
        state_factory=build_fvm_solver,
        state_spec=spec,
        affinity=affinity,
    )


@pytest.fixture(scope="module")
def chip():
    return get_chip("chip1")


@pytest.fixture(scope="module")
def assignments(chip):
    from repro.data.power import PowerSampler

    sampler = PowerSampler(chip)
    cases = sampler.sample_many(6, np.random.default_rng(0))
    return [case.assignment for case in cases]


class TestFactoryAndBasics:
    def test_create_plane_kinds(self):
        serial = create_plane("serial")
        assert isinstance(serial, SerialPlane) and serial.workers == 1
        with create_plane("threads", workers=2) as threads:
            assert isinstance(threads, ThreadPlane) and threads.workers == 2
        with pytest.raises(ValueError, match="unknown execution plane"):
            create_plane("gpu")
        assert set(PLANE_KINDS) == {"serial", "threads", "processes"}

    @pytest.mark.parametrize("make", [SerialPlane, lambda: ThreadPlane(workers=3)])
    def test_run_all_preserves_order(self, make):
        with make() as plane:
            assert plane.run_all(_ping_tasks(20)) == list(range(20))

    def test_stateless_tasks_need_no_factory(self):
        plane = SerialPlane()
        assert plane.submit(PlaneTask(fn=ping, payload="x")).result() == "x"

    def test_state_key_without_factory_errors(self):
        plane = SerialPlane()
        future = plane.submit(PlaneTask(fn=ping, payload=1, state_key="k"))
        with pytest.raises(ValueError, match="no state_factory"):
            future.result()

    def test_closed_plane_rejects_submits(self):
        plane = ThreadPlane(workers=1)
        plane.close()
        with pytest.raises(RuntimeError, match="closed"):
            plane.submit(_ping_tasks(1)[0])
        plane.close()  # idempotent


class TestWarmState:
    def test_serial_state_built_once_per_key(self, chip, assignments):
        plane = SerialPlane()
        for _ in range(3):
            targets, seconds = plane.submit(_solver_task(chip, assignments)).result()
            assert targets.shape[0] == len(assignments)
        stats = plane.stats()
        assert stats["tasks"] == 3 and stats["completed"] == 3
        assert stats["per_worker"][0]["warm_keys"] == 1

    def test_serial_state_lru_eviction(self, chip, assignments):
        plane = SerialPlane(state_capacity=1)
        plane.submit(_solver_task(chip, assignments[:2], resolution=RES)).result()
        plane.submit(_solver_task(chip, assignments[:2], resolution=RES + 2)).result()
        assert plane.stats()["per_worker"][0]["warm_keys"] == 1

    def test_reported_warm_keys_track_worker_lru(self, chip, assignments):
        """Parent-side warm_keys mirror the worker's LRU eviction, so the
        number operators budget memory from never overreports residency."""
        with ThreadPlane(workers=1, state_capacity=2) as plane:
            for resolution in (RES, RES + 2, RES + 4):
                plane.submit(
                    _solver_task(chip, assignments[:1], resolution=resolution)
                ).result()
            assert plane.stats()["per_worker"][0]["warm_keys"] == 2

    def test_only_serial_planes_are_synchronous(self):
        assert SerialPlane.synchronous is True
        assert ThreadPlane.synchronous is False and ProcessPlane.synchronous is False

    def test_thread_affinity_routes_same_key_to_one_worker(self, chip, assignments):
        with ThreadPlane(workers=3) as plane:
            tasks = [_solver_task(chip, assignments[:2]) for _ in range(6)]
            plane.run_all(tasks)
            busy = [w for w in plane.stats()["per_worker"] if w["tasks"]]
            assert len(busy) == 1 and busy[0]["tasks"] == 6

    def test_explicit_affinity_shards_across_workers(self, chip, assignments):
        with ThreadPlane(workers=2) as plane:
            tasks = [
                _solver_task(chip, assignments[:2], affinity=index) for index in range(4)
            ]
            plane.run_all(tasks)
            per_worker = plane.stats()["per_worker"]
            assert [w["tasks"] for w in per_worker] == [2, 2]
            # Each worker warmed its own copy of the (single) state key.
            assert all(w["warm_keys"] == 1 for w in per_worker)


class TestErrorPropagation:
    @pytest.mark.parametrize("make", [SerialPlane, lambda: ThreadPlane(workers=2)])
    def test_task_exception_reaches_caller(self, make, chip):
        with make() as plane:
            bad = _solver_task(chip, [{"nope/block": 1.0}])
            with pytest.raises(KeyError):
                plane.submit(bad).result(timeout=60)
            # The plane survives a failing task.
            assert plane.submit(PlaneTask(fn=ping, payload=7)).result() == 7
            assert plane.stats()["errors"] == 1


class TestProcessPlane:
    def test_round_trip_and_stats(self, chip, assignments):
        with ProcessPlane(workers=2) as plane:
            assert plane.run_all(_ping_tasks(4), timeout=120) == list(range(4))
            tasks = [
                _solver_task(chip, assignments[index:index + 2], affinity=index)
                for index in range(3)
            ]
            results = plane.run_all(tasks, timeout=300)
            inline = [generate_batch(build_fvm_solver(tasks[0].state_spec),
                                     task.payload) for task in tasks]
            for (targets, _), (expected, _) in zip(results, inline):
                assert np.array_equal(targets, expected)
            stats = plane.stats()
            assert stats["kind"] == "processes"
            assert stats["tasks"] == 7 and stats["queue_depth"] == 0
            assert sum(w["warm_keys"] for w in stats["per_worker"]) >= 1

    def test_worker_exception_reaches_caller(self, chip):
        with ProcessPlane(workers=1) as plane:
            bad = _solver_task(chip, [{"nope/block": 1.0}])
            with pytest.raises(KeyError):
                plane.submit(bad).result(timeout=120)
            assert plane.submit(PlaneTask(fn=ping, payload=3)).result(timeout=120) == 3

    def test_unpicklable_task_fails_at_submit(self):
        import threading

        with ProcessPlane(workers=1) as plane:
            with pytest.raises(ValueError, match="not picklable"):
                plane.submit(PlaneTask(fn=ping, payload=threading.Lock()))
            # The plane survives and still answers.
            assert plane.submit(PlaneTask(fn=ping, payload=5)).result(timeout=120) == 5

    def test_failed_factory_is_retried_not_poisoned(self, chip):
        """A factory failure must not poison the warm-key: later tasks for
        the same key retry the build (via the worker's recipe cache) and get
        the real error, never 'no state_factory'."""
        with ProcessPlane(workers=1) as plane:
            bad = _solver_task(chip, [], resolution=1)  # build_geometry: nx >= 2
            with pytest.raises(ValueError, match="nx"):
                plane.submit(bad).result(timeout=120)
            # Second task elides the spec (the mirror believes the key warm);
            # the worker rebuilds from its recipe and reports the same error.
            with pytest.raises(ValueError, match="nx"):
                plane.submit(bad).result(timeout=120)

    def test_context_exit_leaves_no_orphans(self):
        with ProcessPlane(workers=2) as plane:
            plane.run_all(_ping_tasks(2), timeout=120)
            pids = plane.worker_pids()
            assert len(pids) == 2
        deadline = time.time() + 10.0
        while time.time() < deadline:
            if all(not _alive(pid) for pid in pids):
                break
            time.sleep(0.1)
        assert all(not _alive(pid) for pid in pids)
        with pytest.raises(RuntimeError, match="closed"):
            plane.submit(_ping_tasks(1)[0])


def _alive(pid):
    """Whether ``pid`` is a live (non-zombie) process."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False


class TestFactorizationKeying:
    """Warm-state keys must separate factorization requests.

    Plane workers cache warm solvers/adapters by state key; if two
    factorization requests shared one key, a worker warmed under "lu"
    would silently answer "cholesky" traffic (and vice versa).  The keys
    embed the *requested* string, so they differ even on hosts where both
    requests currently resolve to the same kernel.
    """

    def test_solver_state_keys_differ_across_factorizations(self, chip):
        keys = {
            solver_state_key(SolverSpec(chip=chip, resolution=RES, factorization=f))
            for f in ("auto", "cholesky", "lu")
        }
        assert len(keys) == 3

    def test_backend_state_keys_differ_across_factorizations(self, chip):
        from repro.runtime.tasks import BackendSpec, backend_state_key

        keys = {
            backend_state_key(
                BackendSpec(chip=chip, resolution=RES, backend="fvm", factorization=f)
            )
            for f in ("auto", "cholesky", "lu")
        }
        assert len(keys) == 3

    def test_plane_warms_distinct_states_per_factorization(self, chip, assignments):
        lu_spec = SolverSpec(chip=chip, resolution=RES, factorization="lu")
        auto_spec = SolverSpec(chip=chip, resolution=RES, factorization="auto")
        with ThreadPlane(workers=1) as plane:
            for spec in (lu_spec, auto_spec):
                task = PlaneTask(
                    fn=generate_batch,
                    payload=assignments[:2],
                    state_key=solver_state_key(spec),
                    state_factory=build_fvm_solver,
                    state_spec=spec,
                )
                targets, _ = plane.submit(task).result(timeout=120)
                assert targets.shape[0] == 2
            stats = plane.stats()
        # Two distinct warm states were built, one per factorization key.
        assert stats["per_worker"][0]["warm_keys"] == 2
