"""Worker-death recovery: SIGKILL a plane worker mid-batch, lose nothing.

The tentpole satellite: a :class:`~repro.runtime.plane.ProcessPlane` worker
killed with an un-catchable signal while tasks are queued on (or in flight
to) it must not strand any future — the plane detects the death, resubmits
the lost tasks to a healthy worker (re-shipping the warm-state recipes) and
the batch's answers stay bitwise-identical to inline serial solving.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.runtime import PlaneTask, ProcessPlane, SerialPlane
from repro.runtime.faults import FaultPlan
from repro.runtime.tasks import (
    SolverSpec,
    build_fvm_solver,
    generate_batch,
    slow_ping,
    solver_state_key,
)

RES = 8


@pytest.fixture(scope="module")
def chip():
    return get_chip("chip1")


@pytest.fixture(scope="module")
def assignments(chip):
    from repro.data.power import PowerSampler

    sampler = PowerSampler(chip)
    cases = sampler.sample_many(6, np.random.default_rng(7))
    return [case.assignment for case in cases]


def _solver_task(chip, batch, affinity):
    spec = SolverSpec(chip=chip, resolution=RES)
    return PlaneTask(
        fn=generate_batch,
        payload=batch,
        state_key=solver_state_key(spec),
        state_factory=build_fvm_solver,
        state_spec=spec,
        affinity=affinity,
    )


class TestSigkillMidBatch:
    def test_batch_completes_bitwise_identical_after_sigkill(self, chip, assignments):
        batches = [assignments[index:index + 2] for index in range(0, 6, 2)]
        with SerialPlane() as serial:
            expected = serial.run_all(
                [_solver_task(chip, batch, affinity=None) for batch in batches],
                timeout=300,
            )

        with ProcessPlane(workers=2) as plane:
            # Occupy worker 0 so the solver tasks pinned to it are still
            # queued when the signal lands — killed genuinely mid-batch.
            occupy = plane.submit(
                PlaneTask(fn=slow_ping, payload=(0.5, "held"), affinity=0)
            )
            futures = [
                plane.submit(_solver_task(chip, batch, affinity=index % 2))
                for index, batch in enumerate(batches)
            ]
            os.kill(plane._processes[0].pid, signal.SIGKILL)

            # Every future must settle with a real answer: the lost tasks are
            # resubmitted (with their warm-state recipes) to worker 1.
            assert occupy.result(timeout=120) == "held"
            results = [future.result(timeout=300) for future in futures]
            for (targets, _), (expected_targets, _) in zip(results, expected):
                assert np.array_equal(targets, expected_targets)

            stats = plane.stats()
            assert stats["workers_dead"] == 1
            assert stats["errors"] == 0
            # The occupy ping and the slot-0 solver tasks were all recovered
            # by resubmission; slot-1 tasks never needed it.
            assert stats["retried"] >= 2
            assert not stats["per_worker"][0]["alive"]
            assert stats["per_worker"][1]["alive"]

    def test_chaos_kill_directive_is_deterministic(self):
        # kill-worker:0@2 — the first two tasks complete, the third is lost
        # and must be answered by the surviving worker via retry.
        plan = FaultPlan.parse("kill-worker:0@2")
        with ProcessPlane(workers=2, faults=plan) as plane:
            futures = [
                plane.submit(PlaneTask(fn=slow_ping, payload=(0.01, index), affinity=0))
                for index in range(4)
            ]
            assert [future.result(timeout=120) for future in futures] == list(range(4))
            deadline = time.monotonic() + 30
            while plane.stats()["workers_dead"] == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            stats = plane.stats()
            assert stats["workers_dead"] == 1
            assert stats["retried"] == 2
            assert stats["errors"] == 0
