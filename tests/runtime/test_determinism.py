"""Determinism and shutdown guarantees of the multi-core execution plane.

The contract the tentpole refactor rests on: routing solver work through a
:class:`~repro.runtime.plane.ProcessPlane` changes *where* the arithmetic
runs, never *what* it produces — dataset generation and serving answers are
bitwise-equal to the serial plane on fixed seeds — and worker processes
never outlive their plane (context-manager exit, SIGINT).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.api.session import ThermalSession
from repro.data.generation import DatasetSpec, generate_dataset
from repro.runtime import ProcessPlane, SerialPlane
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.request import ThermalRequest

RES = 10
SPEC = DatasetSpec(chip_name="chip1", resolution=RES, num_samples=12, seed=5)

_SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


@pytest.fixture(scope="module")
def process_plane():
    with ProcessPlane(workers=2) as plane:
        yield plane


class TestBitwiseDeterminism:
    def test_dataset_generation_matches_serial(self, process_plane):
        serial = generate_dataset(SPEC, batch_size=4, plane=SerialPlane())
        sharded = generate_dataset(SPEC, batch_size=4, plane=process_plane)
        assert np.array_equal(serial.inputs, sharded.inputs)
        assert np.array_equal(serial.targets, sharded.targets)
        assert np.array_equal(
            serial.metadata["total_power_W"], sharded.metadata["total_power_W"]
        )

    def test_session_solve_batch_matches_inline(self, process_plane):
        powers = [30.0 + index for index in range(8)]
        inline = ThermalSession().solve_batch(
            "chip1", powers, resolution=RES, include_maps=True, use_cache=False
        )
        planar = ThermalSession(plane=process_plane).solve_batch(
            "chip1", powers, resolution=RES, include_maps=True, use_cache=False
        )
        for a, b in zip(inline, planar):
            assert a.max_K == b.max_K and a.min_K == b.min_K and a.mean_K == b.mean_K
            for name in a.layer_maps:
                assert np.array_equal(a.layer_maps[name], b.layer_maps[name])

    def test_serving_answers_match_serial_engine(self, process_plane):
        def answers(session):
            engine = MicroBatchEngine(
                build_backends(session=session), workers=2, max_wait_ms=1.0
            )
            with engine:
                requests = [
                    ThermalRequest.create(chip, total_power_W=40.0 + index, resolution=RES)
                    for index, chip in enumerate(("chip1", "chip2", "chip1", "chip2"))
                ]
                return engine.solve_many(requests, timeout=300)

        serial_answers = answers(ThermalSession())
        planar_answers = answers(ThermalSession(plane=process_plane))
        for a, b in zip(serial_answers, planar_answers):
            assert (a.max_K, a.min_K, a.mean_K) == (b.max_K, b.min_K, b.mean_K)


class TestSeedEquivalence:
    def test_serial_plane_matches_historical_pipeline(self):
        """The plane refactor's serial default reproduces the pre-plane loop
        (sample up front, stacked-RHS batches against one factorisation)."""
        from repro.data.power import PowerSampler
        from repro.chip.designs import get_chip
        from repro.solvers.fvm import FVMSolver

        chip = get_chip(SPEC.chip_name)
        rng = np.random.default_rng(SPEC.seed)
        sampler = PowerSampler(
            chip,
            core_bias=SPEC.core_bias,
            idle_probability=SPEC.idle_probability,
        )
        solver = FVMSolver(chip, nx=SPEC.resolution, cells_per_layer=SPEC.cells_per_layer)
        cases = sampler.sample_many(SPEC.num_samples, rng)
        inputs, targets = [], []
        for start in range(0, SPEC.num_samples, 4):
            batch = cases[start:start + 4]
            fields = solver.solve_batch([case.assignment for case in batch])
            for case, field in zip(batch, fields):
                inputs.append(sampler.rasterize(case, solver.nx, solver.ny))
                targets.append(field.power_layer_maps())

        dataset = generate_dataset(SPEC, batch_size=4)
        assert np.array_equal(dataset.inputs, np.stack(inputs))
        assert np.array_equal(dataset.targets, np.stack(targets))


class TestCleanShutdown:
    def test_sigint_kills_workers_and_exits_zero(self, tmp_path):
        """A process running a plane exits 0 on SIGINT with no orphans."""
        script = tmp_path / "plane_sigint.py"
        script.write_text(textwrap.dedent("""
            import sys, time
            from repro.runtime import ProcessPlane, PlaneTask
            from repro.runtime.tasks import ping

            def main():
                plane = ProcessPlane(workers=2)
                try:
                    plane.run_all([PlaneTask(fn=ping, payload=i) for i in range(2)],
                                  timeout=120)
                    print("READY", " ".join(map(str, plane.worker_pids())), flush=True)
                    while True:
                        time.sleep(0.1)
                except KeyboardInterrupt:
                    plane.close()
                    print("CLOSED", flush=True)

            if __name__ == "__main__":
                main()
        """))
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("READY"), f"unexpected first line: {line!r}"
            worker_pids = [int(token) for token in line.split()[1:]]
            assert len(worker_pids) == 2
            process.send_signal(signal.SIGINT)
            out = process.communicate(timeout=60)[0]
            assert process.returncode == 0, out
            assert "CLOSED" in out
            deadline = time.time() + 10.0
            while time.time() < deadline and any(_alive(p) for p in worker_pids):
                time.sleep(0.1)
            assert all(not _alive(pid) for pid in worker_pids)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def _alive(pid):
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False
