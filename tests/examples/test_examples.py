"""Smoke tests for the examples/ scripts.

Every example exposes a ``main()`` whose keyword arguments control the
experiment scale; here each one runs end-to-end at the tiniest scale that
still exercises its whole flow (generation, training, every backend it
touches), so API refactors cannot silently break the documented entry
points.  Spectral models need ``resolution >= 2 * modes`` (modes = 8 in the
examples), which sets the floor for the training resolutions.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: Tiny-scale keyword arguments per example script.
TINY_SCALE = {
    "quickstart": dict(resolution=16, samples=6, epochs=1, batch_size=2),
    # resolution >= 12 keeps every chip3 block resolvable on the grid
    "solver_comparison": dict(
        num_cases=1, fine_resolution=16, standard_resolution=12,
        fine_cells_per_layer=1, standard_cells_per_layer=1,
    ),
    "transient_workload": dict(
        resolution=8, cells_per_layer=1, steps_per_time_constant=2
    ),
    "custom_chip_design": dict(
        what_if_resolution=12, surrogate_resolution=16, samples=6, epochs=1
    ),
    "transfer_learning_chip1": dict(
        low_resolution=16, high_resolution=20, num_low=6, num_high=4, epochs=1
    ),
}


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_is_covered():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(TINY_SCALE), (
        "examples/ and TINY_SCALE disagree; add a tiny-scale entry for new examples"
    )


@pytest.mark.parametrize("name", sorted(TINY_SCALE))
def test_example_runs_at_tiny_scale(name, capsys):
    module = _load_example(name)
    module.main(**TINY_SCALE[name])
    out = capsys.readouterr().out
    assert out.strip(), f"example '{name}' produced no output"
