"""Tests for the trainer, transfer learning, callbacks and grid search."""

import numpy as np
import pytest

from repro.data.dataset import ThermalDataset
from repro.operators import FNO2d, SAUFNO2d
from repro.training import (
    EarlyStopping,
    GridSearch,
    ProgressLogger,
    Trainer,
    TrainingConfig,
    TransferLearningConfig,
    TransferLearningTrainer,
)

_TINY_MODEL = dict(width=8, modes1=3, modes2=3)


def _synthetic_dataset(n=16, resolution=12, seed=0):
    """A cheap synthetic operator-learning problem: temperature = smoothed power."""
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0.0, 1.0, (n, 1, resolution, resolution))
    spectrum = np.fft.fft2(inputs, axes=(-2, -1))
    freqs_y = np.fft.fftfreq(resolution)[None, None, :, None]
    freqs_x = np.fft.fftfreq(resolution)[None, None, None, :]
    damping = 1.0 / (1.0 + 40.0 * (freqs_y ** 2 + freqs_x ** 2))
    targets = np.fft.ifft2(spectrum * damping, axes=(-2, -1)).real * 30.0 + 320.0
    return ThermalDataset(inputs=inputs, targets=targets, chip_name="synthetic", resolution=resolution)


class TestTrainingConfig:
    def test_loss_selection(self):
        assert TrainingConfig(loss="mse").loss_fn() is not None
        assert TrainingConfig(loss="relative_l2").loss_fn() is not None
        with pytest.raises(ValueError):
            TrainingConfig(loss="hinge").loss_fn()


class TestTrainer:
    def test_loss_decreases(self):
        dataset = _synthetic_dataset(20)
        model = FNO2d(1, 1, num_layers=2, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=8, batch_size=5, learning_rate=3e-3))
        history = trainer.fit(dataset)
        assert history.epochs_run == 8
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_loss_tracked(self):
        data = _synthetic_dataset(20).split(0.8)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=4, learning_rate=1e-3))
        history = trainer.fit(data.train, validation_data=data.test)
        assert len(history.val_loss) == 3

    def test_predictions_in_physical_units(self):
        dataset = _synthetic_dataset(16)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=6, batch_size=4, learning_rate=3e-3))
        trainer.fit(dataset)
        prediction = trainer.predict(dataset.inputs)
        assert prediction.shape == dataset.targets.shape
        # After a few epochs the predictions should live near the target range.
        assert 250.0 < prediction.mean() < 400.0

    def test_predict_before_fit_raises(self):
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model)
        with pytest.raises(RuntimeError):
            trainer.predict(np.zeros((1, 1, 8, 8)))

    def test_evaluate_returns_metric_bundle(self):
        dataset = _synthetic_dataset(12)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=4))
        trainer.fit(dataset)
        report = trainer.evaluate(dataset)
        assert report.rmse > 0 and report.max_error >= 0

    def test_learning_rate_decays(self):
        dataset = _synthetic_dataset(8)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(
            model,
            TrainingConfig(epochs=4, batch_size=4, learning_rate=1e-3, lr_decay_step=2, lr_decay_gamma=0.1),
        )
        history = trainer.fit(dataset)
        assert history.learning_rate[-1] < history.learning_rate[0]

    def test_gradient_clipping_runs(self):
        dataset = _synthetic_dataset(8)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=4, grad_clip=0.5))
        history = trainer.fit(dataset)
        assert history.epochs_run == 2

    def test_early_stopping_halts_training(self):
        dataset = _synthetic_dataset(8)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=50, batch_size=4, learning_rate=1e-9))
        history = trainer.fit(dataset, callbacks=[EarlyStopping(patience=2, min_delta=1.0)])
        assert history.epochs_run < 50

    def test_inference_timer_positive(self):
        dataset = _synthetic_dataset(6)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=3))
        trainer.fit(dataset)
        assert trainer.inference_seconds_per_case(dataset, repeats=1) > 0


class TestCallbacks:
    def test_early_stopping_logic(self):
        stopper = EarlyStopping(patience=2)
        stopper.on_epoch_end(0, 1.0, None)
        stopper.on_epoch_end(1, 1.1, None)
        assert not stopper.should_stop()
        stopper.on_epoch_end(2, 1.2, None)
        assert stopper.should_stop()

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.on_epoch_end(0, 1.0, None)
        stopper.on_epoch_end(1, 1.5, None)
        stopper.on_epoch_end(2, 0.5, None)
        stopper.on_epoch_end(3, 0.6, None)
        assert not stopper.should_stop()

    def test_progress_logger_prints_on_schedule(self, capsys):
        logger = ProgressLogger(every=2, prefix="[x] ")
        logger.on_epoch_end(0, 1.0, None)
        logger.on_epoch_end(1, 0.9, 0.95)
        captured = capsys.readouterr().out
        assert "epoch 2" in captured and "[x]" in captured

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            ProgressLogger(every=0)


class TestTransferLearning:
    def test_pipeline_runs_and_reports(self):
        low = _synthetic_dataset(16, resolution=8, seed=0)
        high = _synthetic_dataset(10, resolution=16, seed=1)
        high_split = high.split(0.7)
        model = FNO2d(1, 1, num_layers=1, **_TINY_MODEL)
        pipeline = TransferLearningTrainer(
            model,
            TransferLearningConfig(
                pretrain=TrainingConfig(epochs=3, batch_size=4, learning_rate=2e-3),
                finetune_epochs=2,
            ),
        )
        result = pipeline.run(low, high_split.train, high_split.test)
        assert result.pretrain_history.epochs_run == 3
        assert result.finetune_history.epochs_run == 2
        assert result.metrics.rmse > 0
        assert result.total_seconds > 0

    def test_finetune_lr_is_scaled_down(self):
        config = TransferLearningConfig(
            pretrain=TrainingConfig(learning_rate=1e-3), finetune_lr_scale=0.1
        )
        assert config.finetune_config().learning_rate == pytest.approx(1e-4)

    def test_predict_requires_run(self):
        pipeline = TransferLearningTrainer(FNO2d(1, 1, num_layers=1, **_TINY_MODEL))
        with pytest.raises(RuntimeError):
            pipeline.predict(np.zeros((1, 1, 8, 8)))

    def test_mesh_invariant_weights_transfer_across_resolutions(self):
        """Pre-training at 8x8 then fine-tuning at 16x16 must be loss-reducing."""
        low = _synthetic_dataset(20, resolution=8, seed=2)
        high = _synthetic_dataset(12, resolution=16, seed=3)
        high_split = high.split(0.7)
        model = SAUFNO2d(1, 1, num_fourier_layers=1, num_ufourier_layers=1,
                         unet_base_channels=4, unet_levels=1, attention_dim=4, **_TINY_MODEL)
        pipeline = TransferLearningTrainer(
            model,
            TransferLearningConfig(
                pretrain=TrainingConfig(epochs=4, batch_size=4, learning_rate=3e-3),
                finetune_epochs=3,
            ),
        )
        result = pipeline.run(low, high_split.train, high_split.test)
        assert result.finetune_history.train_loss[-1] <= result.finetune_history.train_loss[0] * 1.5


class TestGridSearch:
    def test_runs_all_grid_points_and_picks_best(self):
        data = _synthetic_dataset(12).split(0.75)

        def builder(params):
            return FNO2d(1, 1, num_layers=params["num_layers"], **_TINY_MODEL)

        search = GridSearch(
            builder,
            TrainingConfig(epochs=1, batch_size=4),
            {"num_layers": [1, 2]},
        )
        result = search.run(data.train, data.test)
        assert len(result.records) == 2
        assert result.best_params()["num_layers"] in (1, 2)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(lambda p: None, TrainingConfig(), {})
