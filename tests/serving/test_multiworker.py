"""Multi-worker dispatch and the HTTP transient endpoint."""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api.session import ThermalSession
from repro.chip.designs import get_chip
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.request import (
    MAX_TRANSIENT_STEPS,
    ThermalRequest,
    TransientRequest,
)
from repro.serving.server import ThermalServer
from repro.solvers.fvm import FVMSolver

RES = 10  # small but large enough to resolve every chip's blocks


def _requests(count, chip="chip1", backend="fvm", base=20.0):
    return [
        ThermalRequest.create(chip, total_power_W=base + i, resolution=RES, backend=backend)
        for i in range(count)
    ]


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestMultiWorkerDispatch:
    def test_all_requests_answered_across_shards(self):
        session = ThermalSession()
        engine = MicroBatchEngine(
            build_backends(session=session), workers=3, max_wait_ms=1.0
        )
        requests = (
            _requests(4, "chip1") + _requests(4, "chip2") + _requests(4, "chip3")
            + _requests(2, "chip1", backend="hotspot")
        )
        with engine:
            results = engine.solve_many(requests, timeout=120)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.chip == request.chip
            assert result.backend == request.backend
            assert result.max_K > 300.0
        stats = engine.stats()
        assert stats["workers"] == 3
        assert len(stats["shard_queue_depths"]) == 3
        assert stats["total_requests"] == len(requests)

    def test_group_always_lands_on_the_same_shard(self):
        engine = MicroBatchEngine(build_backends(), workers=4)
        request = _requests(1)[0]
        shards = {engine._shard_of(request).index for _ in range(32)}
        assert len(shards) == 1

    def test_sharding_matches_solver_pool_granularity(self):
        """Detail-level variants of one (chip, resolution, backend) share a
        shard: the pooled prepared adapter must only ever be driven by one
        worker thread."""
        engine = MicroBatchEngine(build_backends(), workers=4)
        plain = ThermalRequest.create("chip1", total_power_W=20, resolution=RES)
        mapped = ThermalRequest.create(
            "chip1", total_power_W=20, resolution=RES, include_maps=True
        )
        assert plain.group_key != mapped.group_key  # still separate batches
        assert engine._shard_of(plain).index == engine._shard_of(mapped).index

    def test_single_worker_answers_are_bitwise_identical(self):
        """Acceptance: --workers 1 answers == the direct solver's, exactly."""
        requests = _requests(5)
        engine = MicroBatchEngine(build_backends(), workers=1, max_wait_ms=1.0)
        with engine:
            results = engine.solve_many(requests, timeout=120)
        solver = FVMSolver(get_chip("chip1"), nx=RES)
        for request, result in zip(requests, results):
            reference = solver.solve(request.assignment)
            assert result.max_K == reference.max_K  # bitwise, not approx
            assert result.min_K == reference.min_K
            assert result.mean_K == reference.mean_K

    def test_multi_worker_answers_match_single_worker(self):
        requests = _requests(6, "chip1") + _requests(6, "chip2")
        single_session = ThermalSession()
        multi_session = ThermalSession()
        with MicroBatchEngine(
            build_backends(session=single_session), workers=1, max_wait_ms=1.0
        ) as engine:
            single = engine.solve_many(requests, timeout=120)
        with MicroBatchEngine(
            build_backends(session=multi_session), workers=4, max_wait_ms=1.0
        ) as engine:
            multi = engine.solve_many(requests, timeout=120)
        for a, b in zip(single, multi):
            assert a.max_K == b.max_K
            assert a.mean_K == b.mean_K

    def test_concurrent_submitters_under_multiworker(self):
        engine = MicroBatchEngine(build_backends(), workers=2, max_wait_ms=1.0)
        chips = ["chip1", "chip2", "chip3"]

        def client(index):
            request = _requests(1, chips[index % 3], base=20.0 + index)[0]
            return engine.solve(request, timeout=120)

        with engine:
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(client, range(24)))
        assert len(results) == 24
        assert all(r.max_K > 300.0 for r in results)

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            MicroBatchEngine(build_backends(), workers=0)


class TestTransientRequestValidation:
    def test_constant_power_request(self):
        request = TransientRequest.create(
            "chip1", duration_s=0.1, dt_s=0.01, total_power_W=30.0, resolution=RES
        )
        assert request.chip == "chip1"
        assert request.num_steps == 10
        assert request.schedule == ()
        assert abs(request.total_power_W - 30.0) < 1e-9
        trace = request.trace()
        assert trace == request.assignment  # constant trace is the mapping

    def test_schedule_builds_a_step_function(self):
        request = TransientRequest.create(
            "chip1",
            duration_s=0.3,
            dt_s=0.01,
            schedule=[
                {"t_s": 0.0, "total_power": 10.0},
                {"t_s": 0.1, "total_power": 40.0},
                {"t_s": 0.2, "total_power": 20.0},
            ],
            resolution=RES,
        )
        trace = request.trace()
        assert callable(trace)
        assert abs(sum(trace(0.0).values()) - 10.0) < 1e-9
        assert abs(sum(trace(0.05).values()) - 10.0) < 1e-9
        assert abs(sum(trace(0.1).values()) - 40.0) < 1e-9
        assert abs(sum(trace(0.25).values()) - 20.0) < 1e-9

    def test_bad_durations_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TransientRequest.create("chip1", duration_s=0.0, dt_s=0.01, total_power_W=10)
        with pytest.raises(ValueError, match="not exceed"):
            TransientRequest.create("chip1", duration_s=0.01, dt_s=0.1, total_power_W=10)
        with pytest.raises(ValueError, match="time steps"):
            TransientRequest.create(
                "chip1", duration_s=float(MAX_TRANSIENT_STEPS + 1), dt_s=1.0,
                total_power_W=10,
            )

    def test_bad_schedules_rejected(self):
        with pytest.raises(ValueError, match="t_s=0"):
            TransientRequest.create(
                "chip1", duration_s=0.2, dt_s=0.01,
                schedule=[{"t_s": 0.1, "total_power": 10.0}],
            )
        with pytest.raises(ValueError, match="strictly increasing"):
            TransientRequest.create(
                "chip1", duration_s=0.2, dt_s=0.01,
                schedule=[
                    {"t_s": 0.0, "total_power": 10.0},
                    {"t_s": 0.0, "total_power": 20.0},
                ],
            )
        with pytest.raises(ValueError, match="beyond"):
            TransientRequest.create(
                "chip1", duration_s=0.2, dt_s=0.01,
                schedule=[
                    {"t_s": 0.0, "total_power": 10.0},
                    {"t_s": 0.5, "total_power": 20.0},
                ],
            )
        with pytest.raises(ValueError, match="not both"):
            TransientRequest.create(
                "chip1", duration_s=0.2, dt_s=0.01, total_power_W=5.0,
                schedule=[{"t_s": 0.0, "total_power": 10.0}],
            )
        with pytest.raises(ValueError, match="at least one"):
            TransientRequest.create("chip1", duration_s=0.2, dt_s=0.01, schedule=[])

    def test_from_payload_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            TransientRequest.from_payload(
                {"chip": "chip1", "duration_s": 0.1, "dt_s": 0.01, "horizon": 1}
            )
        with pytest.raises(ValueError, match="required 'duration_s'"):
            TransientRequest.from_payload({"chip": "chip1", "dt_s": 0.01})
        with pytest.raises(KeyError, match="unknown chip"):
            TransientRequest.from_payload(
                {"chip": "chip9", "duration_s": 0.1, "dt_s": 0.01}
            )


@pytest.fixture(scope="module")
def server():
    session = ThermalSession()
    engine = MicroBatchEngine(
        build_backends(session=session), workers=2, max_wait_ms=1.0
    )
    with ThermalServer(engine, port=0, session=session) as running:
        yield running


class TestTransientEndpoint:
    def test_constant_power_trace(self, server):
        status, body = _post(
            server.url + "/solve_transient",
            {"chip": "chip1", "resolution": RES, "duration_s": 0.02, "dt_s": 0.002,
             "total_power": 30.0},
        )
        assert status == 200
        assert body["backend"] == "transient"
        history = body["history"]
        # 10 backward-Euler steps plus the stored initial (t=0) snapshot.
        assert len(history["times_s"]) == len(history["peak_K"]) == 11
        assert history["peak_K"] == sorted(history["peak_K"])  # monotone heating
        assert abs(body["max_K"] - history["peak_K"][-1]) <= 1e-6  # JSON rounds

    def test_schedule_changes_the_trajectory(self, server):
        body = {
            "chip": "chip1", "resolution": RES, "duration_s": 0.02, "dt_s": 0.002,
            "schedule": [
                {"t_s": 0.0, "total_power": 40.0},
                {"t_s": 0.01, "total_power": 5.0},
            ],
        }
        status, stepped = _post(server.url + "/solve_transient", body)
        assert status == 200
        peaks = stepped["history"]["peak_K"]
        # Heats under 40 W, then cools after the step down to 5 W.
        assert max(peaks) > peaks[-1]

    def test_store_every_thins_the_history(self, server):
        status, body = _post(
            server.url + "/solve_transient",
            {"chip": "chip1", "resolution": RES, "duration_s": 0.02, "dt_s": 0.002,
             "total_power": 30.0, "store_every": 5},
        )
        assert status == 200
        # t=0 snapshot plus steps 5 and 10.
        assert len(body["history"]["times_s"]) == 3

    def test_include_maps(self, server):
        status, body = _post(
            server.url + "/solve_transient",
            {"chip": "chip1", "resolution": RES, "duration_s": 0.01, "dt_s": 0.002,
             "total_power": 30.0, "include_maps": True},
        )
        assert status == 200
        assert set(body["layer_maps"]) == set(get_chip("chip1").power_layer_names)
        assert np.asarray(body["layer_maps"]["core_layer"]).shape == (RES, RES)

    def test_validation_errors_are_400(self, server):
        cases = [
            {"chip": "chip1", "dt_s": 0.01},  # missing duration
            {"chip": "chip9", "duration_s": 0.1, "dt_s": 0.01},
            {"chip": "chip1", "duration_s": 0.1, "dt_s": 0.01,
             "powers": {"bogus/block": 1.0}},
            {"chip": "chip1", "duration_s": 0.1, "dt_s": 0.01, "total_power": 10,
             "schedule": [{"t_s": 0, "total_power": 10}]},
            {"chip": "chip1", "duration_s": 0.1, "dt_s": 0.01,
             "schedule": [{"t_s": 0, "total_power": [10]}]},  # non-numeric watts
            {"chip": "chip1", "duration_s": 1e6, "dt_s": 1e-4, "total_power": 10},
            # JSON parses 1e400 as infinity; must be a 400, not a crash.
            {"chip": "chip1", "duration_s": 1e400, "dt_s": 1.0, "total_power": 10},
            {"chip": "chip1", "duration_s": 0.1, "dt_s": 0.01, "total_power": 10,
             "resolution": 1e400},
        ]
        for body in cases:
            status, answer = _post(server.url + "/solve_transient", body)
            assert status == 400, body
            assert answer["error"]

    def test_transient_admission_cap_answers_429(self, server):
        """Beyond TRANSIENT_MAX_PENDING concurrent traces the endpoint
        rejects fast instead of stacking handler threads."""
        from repro.serving.server import TRANSIENT_MAX_PENDING

        with server._transient_stats_lock:
            server._transient_pending = TRANSIENT_MAX_PENDING
        try:
            status, body = _post(
                server.url + "/solve_transient",
                {"chip": "chip1", "resolution": RES, "duration_s": 0.01,
                 "dt_s": 0.002, "total_power": 21.0},
            )
        finally:
            with server._transient_stats_lock:
                server._transient_pending = 0
        assert status == 429
        assert "retry later" in body["error"]
        # Capacity restored: the next request succeeds.
        status, _ = _post(
            server.url + "/solve_transient",
            {"chip": "chip1", "resolution": RES, "duration_s": 0.01,
             "dt_s": 0.002, "total_power": 21.5},
        )
        assert status == 200

    def test_stats_count_transient_requests(self, server):
        before = json.loads(
            urllib.request.urlopen(server.url + "/stats", timeout=60).read()
        )["transient_endpoint"]["requests"]
        _post(
            server.url + "/solve_transient",
            {"chip": "chip2", "resolution": RES, "duration_s": 0.01, "dt_s": 0.002,
             "total_power": 25.0},
        )
        after = json.loads(
            urllib.request.urlopen(server.url + "/stats", timeout=60).read()
        )["transient_endpoint"]
        assert after["requests"] == before + 1
        assert after["mean_seconds"] > 0

    def test_matches_session_solve_transient(self, server):
        """The HTTP answer is the session's answer for the same trace."""
        body = {"chip": "chip3", "resolution": RES, "duration_s": 0.02,
                "dt_s": 0.002, "total_power": 22.0}
        status, answer = _post(server.url + "/solve_transient", body)
        assert status == 200
        session = ThermalSession()
        request = TransientRequest.from_payload(body)
        reference = session.solve_transient(
            "chip3", request.trace(), 0.02, 0.002, resolution=RES
        )
        assert abs(answer["max_K"] - reference.max_K) <= 1e-6  # JSON rounds 1e-6

    def test_concurrent_transient_and_steady_traffic(self, server):
        def steady(i):
            return _post(
                server.url + "/solve",
                {"chip": "chip1", "resolution": RES, "total_power": 20.0 + i},
            )

        def transient(i):
            return _post(
                server.url + "/solve_transient",
                {"chip": "chip1", "resolution": RES, "duration_s": 0.01,
                 "dt_s": 0.002, "total_power": 20.0 + i},
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(steady, i) for i in range(4)]
            futures += [pool.submit(transient, i) for i in range(4)]
            responses = [f.result() for f in futures]
        assert all(status == 200 for status, _ in responses)
