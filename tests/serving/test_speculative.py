"""Differential suite for ``POST /solve?mode=speculative``.

The speculative stream's contract is *exactness by construction*: the
second (``event: exact``) frame must be byte-for-byte the answer the
blocking ``mode=exact`` endpoint gives for the same body — same engine
path, same session cache, same JSON rounding — for every registered chip
at every tested resolution.  The first (``event: speculative``) frame is
a fast surrogate answer whose provenance names the game being played:
``speculative: true`` plus the backend the exact answer will come from.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.chip.designs import list_chips
from repro.data.generation import DatasetSpec, generate_dataset
from repro.operators.factory import build_operator, save_operator
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.server import ThermalServer
from repro.training.trainer import Trainer, TrainingConfig

RES = 10
RESOLUTIONS = (10, 12)

#: Serving metadata that legitimately differs between two solves of the
#: same physical query (ids, wall-clock, batching, cache provenance).
VOLATILE_KEYS = {
    "request_id", "solve_seconds", "latency_seconds", "batch_size",
    "trace", "cached", "provenance",
}


def _post_json(url, body, headers=None):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post_stream(url, body, headers=None):
    """POST and return the raw SSE body text."""
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.headers["Content-Type"].startswith("text/event-stream")
        return response.read().decode("utf-8")


def _parse_sse(text):
    """SSE body -> list of (id, event, data-dict) frames (comments skipped)."""
    frames = []
    for block in text.split("\n\n"):
        fields = {}
        for line in block.splitlines():
            if not line or line.startswith(":"):
                continue
            name, _, value = line.partition(":")
            fields[name] = value.lstrip()
        if "data" in fields:
            frames.append(
                (int(fields["id"]), fields["event"], json.loads(fields["data"]))
            )
    return frames


def _stable(body):
    """The physically meaningful slice of one solve answer."""
    return {key: value for key, value in body.items() if key not in VOLATILE_KEYS}


@pytest.fixture(scope="module")
def trained_model_path(tmp_path_factory):
    """A tiny FNO surrogate trained for chip1 at the test resolution."""
    dataset = generate_dataset(
        DatasetSpec(chip_name="chip1", resolution=RES, num_samples=8, seed=7)
    )
    model = build_operator(
        "fno",
        dataset.num_input_channels,
        dataset.num_output_channels,
        {"width": 8, "modes1": 3, "modes2": 3},
        np.random.default_rng(0),
    )
    trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=4, seed=0))
    trainer.fit(dataset)
    path = tmp_path_factory.mktemp("models") / "fno_chip1.npz"
    save_operator(
        model,
        str(path),
        input_normalizer=trainer.input_normalizer,
        output_normalizer=trainer.output_normalizer,
        chip_name=dataset.chip_name,
        resolution=dataset.resolution,
    )
    return str(path)


@pytest.fixture(scope="module")
def server(trained_model_path):
    engine = MicroBatchEngine(
        build_backends(model_paths=[trained_model_path]),
        max_batch_size=16,
        max_wait_ms=2.0,
    )
    with ThermalServer(engine, port=0) as running:
        yield running


class TestDifferentialExactness:
    @pytest.mark.parametrize("chip", list_chips())
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_final_frame_is_bitwise_the_blocking_answer(
        self, server, chip, resolution
    ):
        body = {"chip": chip, "total_power": 42.0, "resolution": resolution}
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        kinds = [kind for _, kind, _ in frames]
        assert kinds == ["speculative", "exact"]
        status, blocking = _post_json(server.url + "/solve?mode=exact", body)
        assert status == 200
        exact_frame = frames[-1][2]
        assert _stable(exact_frame) == _stable(blocking)

    def test_exact_equals_default_mode_too(self, server):
        body = {"chip": "chip1", "total_power": 33.0, "resolution": RES}
        status, default_mode = _post_json(server.url + "/solve", body)
        assert status == 200
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        assert _stable(frames[-1][2]) == _stable(default_mode)

    def test_include_maps_survive_the_stream_bitwise(self, server):
        body = {
            "chip": "chip1", "total_power": 51.0, "resolution": RES,
            "include_maps": True,
        }
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        status, blocking = _post_json(server.url + "/solve?mode=exact", body)
        assert status == 200
        exact_frame = frames[-1][2]
        assert exact_frame["layer_maps"] == blocking["layer_maps"]
        assert _stable(exact_frame) == _stable(blocking)


class TestSpeculativeFirstFrame:
    def test_provenance_names_the_game(self, server):
        body = {"chip": "chip2", "total_power": 40.0, "resolution": RES}
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        seq, kind, first = frames[0]
        assert seq == 1 and kind == "speculative"
        assert first["provenance"]["speculative"] is True
        assert first["provenance"]["requested_backend"] == "fvm"
        # chip2 has no trained operator -> the compact model answers first.
        assert first["backend"] == "hotspot"

    def test_trained_operator_is_preferred_as_surrogate(self, server):
        body = {"chip": "chip1", "total_power": 40.0, "resolution": RES}
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        assert frames[0][2]["backend"] == "operator"

    def test_exact_frame_carries_error_vs_provenance(self, server):
        body = {"chip": "chip1", "total_power": 47.0, "resolution": RES}
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        exact_frame = frames[-1][2]
        provenance = exact_frame["provenance"]
        assert provenance["speculative"] is False
        assert provenance["surrogate_backend"] == "operator"
        deltas = provenance["error_vs_speculative"]
        assert set(deltas) >= {"delta_max_K", "delta_mean_K"}
        # The correction is the exact answer minus the surrogate's.
        speculative_frame = frames[0][2]
        expected = round(exact_frame["max_K"] - speculative_frame["max_K"], 5)
        assert round(deltas["delta_max_K"], 5) == pytest.approx(expected, abs=1e-4)

    def test_trace_ids_are_stamped_and_distinct(self, server):
        body = {"chip": "chip1", "total_power": 48.5, "resolution": RES}
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        first, final = frames[0][2], frames[-1][2]
        assert first["trace"]["trace_id"]
        assert final["trace"]["trace_id"]
        assert first["trace"]["trace_id"] != final["trace"]["trace_id"]


class TestSpeculativeEdges:
    def test_unknown_mode_is_400(self, server):
        status, body = _post_json(
            server.url + "/solve?mode=psychic",
            {"chip": "chip1", "total_power": 30.0, "resolution": RES},
        )
        assert status == 400
        assert "psychic" in body["error"]

    def test_surrogate_backend_request_needs_a_distinct_surrogate(self, server):
        # Asking for the hotspot backend speculatively: the operator (loaded
        # for chip1) still serves as the fast first answer.
        body = {
            "chip": "chip1", "total_power": 30.0, "resolution": RES,
            "backend": "hotspot",
        }
        frames = _parse_sse(_post_stream(server.url + "/solve?mode=speculative", body))
        assert frames[0][2]["backend"] == "operator"
        assert frames[-1][2]["backend"] == "hotspot"

    def test_admission_errors_stay_http_statuses(self, server):
        status, body = _post_json(
            server.url + "/solve?mode=speculative",
            {"chip": "no_such_chip", "total_power": 30.0},
        )
        assert status == 400
        assert "unknown chip" in body["error"]

    def test_speculative_counter_advances(self, server):
        with urllib.request.urlopen(server.url + "/stats", timeout=60) as response:
            before = json.loads(response.read())["speculative_endpoint"]["requests"]
        _post_stream(
            server.url + "/solve?mode=speculative",
            {"chip": "chip1", "total_power": 36.0, "resolution": RES},
        )
        with urllib.request.urlopen(server.url + "/stats", timeout=60) as response:
            after = json.loads(response.read())["speculative_endpoint"]["requests"]
        assert after == before + 1
