"""SSE protocol conformance for streaming ``/solve_transient`` (+ chaos).

Covers the wire contract end to end against a real socket: frame grammar
(``id:`` / ``event:`` / ``data:``), keepalive comments, ``Last-Event-ID``
resume mid-trace (the resumed stream is the exact complement of what was
seen), client disconnects releasing the integration slot, deadlines
expiring mid-stream becoming typed shed frames, and — with a chaos
fault plan armed — a ProcessPlane worker SIGKILLed mid-stream never
producing a silent hang on the speculative path.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.api.session import ThermalSession
from repro.runtime.faults import FaultPlan
from repro.runtime.plane import ProcessPlane, _stable_slot
from repro.runtime.tasks import BackendSpec, backend_state_key
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.server import ThermalServer

RES = 10

TRACE = {
    "chip": "chip1", "total_power": 30.0, "resolution": RES,
    "duration_s": 0.01, "dt_s": 0.002,
}


def _post_json(url, body, headers=None):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post_raw(url, body, headers=None):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.headers, response.read().decode("utf-8")


def _parse_sse(text):
    """SSE body -> list of (id, event, data-dict) frames (comments skipped)."""
    frames = []
    for block in text.split("\n\n"):
        fields = {}
        for line in block.splitlines():
            if not line or line.startswith(":"):
                continue
            name, _, value = line.partition(":")
            fields[name] = value.lstrip()
        if "data" in fields:
            frames.append(
                (int(fields["id"]), fields["event"], json.loads(fields["data"]))
            )
    return frames


@pytest.fixture(scope="module")
def server():
    session = ThermalSession()
    engine = MicroBatchEngine(build_backends(session=session))
    with ThermalServer(engine, port=0, session=session) as running:
        yield running


def _stats(server):
    with urllib.request.urlopen(server.url + "/stats", timeout=60) as response:
        return json.loads(response.read())


class TestFrameGrammar:
    def test_frames_and_final_result(self, server):
        headers, text = _post_raw(
            server.url + "/solve_transient?mode=stream", TRACE
        )
        assert headers["Content-Type"].startswith("text/event-stream")
        frames = _parse_sse(text)
        kinds = [kind for _, kind, _ in frames]
        assert kinds == ["segment"] * 6 + ["result"]
        # ``id:`` carries the step index — the resumable cursor.
        assert [seq for seq, kind, _ in frames if kind == "segment"] == list(range(6))
        for seq, kind, data in frames[:-1]:
            assert data["step"] == seq
            assert data["t_s"] == pytest.approx(seq * TRACE["dt_s"])
            assert data["peak_K"] >= data["mean_K"]

    def test_grammar_lines_are_sse(self, server):
        _, text = _post_raw(server.url + "/solve_transient?mode=stream", TRACE)
        # A comment keepalive opens the stream (proof of life before the
        # first segment); every non-comment line is id/event/data.
        lines = [line for line in text.splitlines() if line]
        assert any(line.startswith(":") for line in lines)
        for line in lines:
            assert line.startswith((":", "id:", "event:", "data:"))

    def test_accept_header_triggers_streaming_too(self, server):
        headers, text = _post_raw(
            server.url + "/solve_transient", TRACE,
            headers={"Accept": "text/event-stream"},
        )
        assert headers["Content-Type"].startswith("text/event-stream")
        assert _parse_sse(text)[-1][1] == "result"

    def test_unknown_mode_is_400(self, server):
        status, body = _post_json(
            server.url + "/solve_transient?mode=sideways", TRACE
        )
        assert status == 400
        assert "sideways" in body["error"]


class TestStreamedResultMatchesBlocking:
    def test_result_frame_is_the_blocking_answer(self, server):
        _, text = _post_raw(server.url + "/solve_transient?mode=stream", TRACE)
        streamed = _parse_sse(text)[-1][2]
        status, blocking = _post_json(server.url + "/solve_transient", TRACE)
        assert status == 200
        for volatile in ("request_id", "solve_seconds"):
            streamed.pop(volatile), blocking.pop(volatile)
        streamed_prov = streamed.pop("history"), blocking.pop("history")
        assert streamed == blocking
        first, second = streamed_prov
        assert first["times_s"] == second["times_s"]
        assert first["peak_K"] == second["peak_K"]
        assert first["mean_K"] == second["mean_K"]

    def test_segments_replay_the_history_arrays(self, server):
        _, text = _post_raw(server.url + "/solve_transient?mode=stream", TRACE)
        frames = _parse_sse(text)
        segments = [data for _, kind, data in frames if kind == "segment"]
        result = frames[-1][2]
        assert [s["t_s"] for s in segments] == result["history"]["times_s"]
        assert [s["peak_K"] for s in segments] == result["history"]["peak_K"]
        assert [s["mean_K"] for s in segments] == result["history"]["mean_K"]


class TestResume:
    def test_last_event_id_resumes_the_complement(self, server):
        _, full = _post_raw(server.url + "/solve_transient?mode=stream", TRACE)
        full_frames = _parse_sse(full)
        cursor = 2
        _, resumed = _post_raw(
            server.url + "/solve_transient?mode=stream", TRACE,
            headers={"Last-Event-ID": str(cursor)},
        )
        resumed_frames = _parse_sse(resumed)
        resumed_segments = [f for f in resumed_frames if f[1] == "segment"]
        assert [seq for seq, _, _ in resumed_segments] == [3, 4, 5]
        # Seen + resumed = the full stream, with no overlap.
        full_segments = [f for f in full_frames if f[1] == "segment"]
        assert [f[2] for f in full_segments[cursor + 1:]] == [
            f[2] for f in resumed_segments
        ]
        assert resumed_frames[-1][2]["max_K"] == full_frames[-1][2]["max_K"]

    def test_explicit_since_wins_over_last_event_id(self, server):
        _, text = _post_raw(
            server.url + "/solve_transient?mode=stream&since=4", TRACE,
            headers={"Last-Event-ID": "0"},
        )
        segments = [f for f in _parse_sse(text) if f[1] == "segment"]
        assert [seq for seq, _, _ in segments] == [5]

    def test_bad_since_is_400(self, server):
        status, body = _post_json(
            server.url + "/solve_transient?mode=stream&since=banana", TRACE
        )
        assert status == 400
        assert "since" in body["error"]


class TestSlotLifecycle:
    def test_disconnect_mid_stream_frees_the_engine_slot(self, server):
        # A long trace (5000 steps) the client abandons after the first
        # bytes; the handler's next write hits the reset socket, closes the
        # server-side generator and must release the admission slot.
        long_trace = dict(TRACE, duration_s=5.0, dt_s=0.001)
        body = json.dumps(long_trace).encode("utf-8")
        raw = socket.create_connection((server.host, server.port), timeout=30)
        try:
            raw.sendall(
                b"POST /solve_transient?mode=stream HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body
            )
            assert raw.recv(1024)  # the stream started
        finally:
            # Abort (RST) rather than close: unread frames must not linger.
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                           b"\x01\x00\x00\x00\x00\x00\x00\x00")
            raw.close()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if _stats(server)["transient_endpoint"]["pending"] == 0:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("disconnected stream leaked its admission slot")

    def test_stream_counters_advance(self, server):
        before = _stats(server)["transient_endpoint"]
        _post_raw(server.url + "/solve_transient?mode=stream", TRACE)
        after = _stats(server)["transient_endpoint"]
        assert after["streams"] == before["streams"] + 1
        assert after["requests"] == before["requests"] + 1


class TestDeadlineMidStream:
    def test_expired_budget_ends_with_a_typed_shed_frame(self, server):
        # 20k steps take seconds; a 200 ms budget lets the stream *start*
        # (a pre-start expiry maps to a plain HTTP 504 instead) but
        # guarantees it dies mid-trace.
        shed_before = _stats(server)["transient_endpoint"]["shed"]
        body = dict(TRACE, duration_s=20.0, dt_s=0.001, deadline_ms=200)
        _, text = _post_raw(server.url + "/solve_transient?mode=stream", body)
        frames = _parse_sse(text)
        assert frames[-1][1] == "error"
        error = frames[-1][2]
        assert error["shed"] is True
        assert error["status"] == 504
        assert "deadline" in error["error"]
        assert not any(kind == "result" for _, kind, _ in frames)
        assert _stats(server)["transient_endpoint"]["shed"] == shed_before + 1

    def test_generous_budget_still_completes(self, server):
        body = dict(TRACE, deadline_ms=120_000)
        _, text = _post_raw(server.url + "/solve_transient?mode=stream", body)
        assert _parse_sse(text)[-1][1] == "result"


def _slot0_resolution(chip_name="chip1", workers=2):
    """A resolution whose fvm warm-state key routes to plane slot 0."""
    from repro.chip.designs import get_chip

    chip = get_chip(chip_name)
    for resolution in range(RES, RES + 16):
        spec = BackendSpec(chip=chip, resolution=resolution, backend="fvm")
        if _stable_slot(backend_state_key(spec), workers) == 0:
            return resolution
    raise AssertionError("no resolution maps to slot 0 — routing changed?")


class TestChaosStreaming:
    def test_worker_sigkill_mid_stream_never_hangs(self):
        """The chaos drill, streamed: kill the owning worker under a
        speculative solve.  The stream must end — either with an exact
        frame bitwise-identical to a serial solve (the plane retried on a
        healthy worker) or with a typed ``error`` frame — bounded by the
        request deadline, never a silent hang."""
        plan = FaultPlan.parse("kill-worker:0@0")
        resolution = _slot0_resolution(workers=2)
        plane = ProcessPlane(workers=2, faults=plan)
        session = ThermalSession(plane=plane)
        engine = MicroBatchEngine(build_backends(session=session))
        body = {
            "chip": "chip1", "total_power": 31.0, "resolution": resolution,
            "deadline_ms": 60_000,
        }
        try:
            with ThermalServer(engine, port=0, session=session) as server:
                _, text = _post_raw(server.url + "/solve?mode=speculative", body)
                frames = _parse_sse(text)
                kinds = [kind for _, kind, _ in frames]
                assert kinds[-1] in ("exact", "error")
                if kinds[-1] == "exact":
                    # The plane retried the killed task on the healthy
                    # worker; the answer must match a serial solve bitwise.
                    serial = ThermalSession()
                    reference = serial.solve(
                        "chip1", total_power_W=31.0,
                        resolution=resolution, backend="fvm",
                    )
                    exact = frames[-1][2]
                    assert exact["max_K"] == round(reference.max_K, 6)
                    assert exact["mean_K"] == round(reference.mean_K, 6)
                else:
                    assert frames[-1][2]["status"] in (500, 503, 504)
        finally:
            plane.close()
