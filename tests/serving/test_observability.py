"""Observability plane through the HTTP service: /events, /metrics, tracing.

Covers the wire surfaces end to end — SSE framing and cursor resume across
reconnects, Prometheus exposition, long-poll delivery, trace spans in
``/solve`` answers, the enriched ``/healthz`` and the structured access
log — against a real server on a real socket.
"""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs.bus import EventBus
from repro.obs.events import event_from_json
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.server import ThermalServer

RES = 10


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def _get_raw(url, headers):
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.read().decode("utf-8")


def _solve(server, power=25.0):
    return _post(server.url + "/solve",
                 {"chip": "chip1", "total_power": power, "resolution": RES})


def _parse_sse(text):
    """SSE body -> list of (id, event, data-dict) frames (comments skipped)."""
    frames = []
    for block in text.split("\n\n"):
        fields = {}
        for line in block.splitlines():
            if not line or line.startswith(":"):
                continue
            name, _, value = line.partition(":")
            fields[name] = value.lstrip()
        if fields:
            frames.append(
                (int(fields["id"]), fields["event"], json.loads(fields["data"]))
            )
    return frames


@pytest.fixture(scope="module")
def server():
    engine = MicroBatchEngine(build_backends(), max_batch_size=8, max_wait_ms=1.0)
    with ThermalServer(engine, port=0, sample_interval_s=0.2) as running:
        yield running


class TestTracing:
    def test_solve_response_carries_trace_with_nonzero_spans(self, server):
        status, body = _solve(server, power=31.0)
        assert status == 200
        trace = body["trace"]
        assert trace["trace_id"]
        spans = trace["spans_ms"]
        assert set(spans) == {"queue_wait", "dispatch", "solve", "refine"}
        assert spans["solve"] > 0.0
        assert spans["queue_wait"] >= 0.0 and spans["dispatch"] >= 0.0
        assert all(value >= 0.0 for value in spans.values())

    def test_trace_ids_are_distinct_per_request(self, server):
        _, first = _solve(server, power=32.0)
        _, second = _solve(server, power=33.0)
        assert first["trace"]["trace_id"] != second["trace"]["trace_id"]

    def test_cached_answer_keeps_a_trace(self, server):
        body = {"chip": "chip1", "total_power": 34.25, "resolution": RES}
        _post(server.url + "/solve", body)
        _, cached = _post(server.url + "/solve", body)
        assert cached["cached"] is True
        assert cached["trace"]["trace_id"]


class TestEventsEndpoint:
    def test_long_poll_delivers_request_done_and_advances_cursor(self, server):
        _, before = _get(server.url + "/events?timeout_s=0&since=0")
        _solve(server, power=41.0)
        _, after = _get(server.url + f"/events?timeout_s=5&since={before['cursor']}")
        kinds = [event["kind"] for event in after["events"]]
        assert "request_done" in kinds
        assert "batch_dispatched" in kinds
        assert after["cursor"] > before["cursor"]
        # Every payload round-trips through the typed catalog.
        for payload in after["events"]:
            event = event_from_json(payload)
            assert event.seq > 0 and event.ts > 0

    def test_empty_poll_times_out_with_unchanged_cursor(self, server):
        _, now = _get(server.url + "/events?timeout_s=0")
        cursor = now["cursor"] + 1000  # nothing past here yet
        _, empty = _get(server.url + f"/events?timeout_s=0&since={cursor}")
        assert empty == {"events": [], "cursor": cursor}

    def test_bad_cursor_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/events?since=banana")
        assert excinfo.value.code == 400

    def test_sse_stream_frames_and_resume_after_reconnect(self, server):
        _, start = _get(server.url + "/events?timeout_s=0")
        cursor = start["cursor"]
        _solve(server, power=42.0)
        first = _parse_sse(_get_raw(
            server.url + f"/events?since={cursor}&max_events=2",
            {"Accept": "text/event-stream"},
        ))
        assert len(first) == 2
        for seq, kind, data in first:
            assert seq > cursor
            assert data["kind"] == kind
            assert data["seq"] == seq
        # Reconnect with the standard Last-Event-ID header: the stream
        # resumes exactly past the last seen frame, no duplicates.
        last_seen = first[-1][0]
        _solve(server, power=43.0)
        resumed = _parse_sse(_get_raw(
            server.url + "/events?max_events=2",
            {"Accept": "text/event-stream", "Last-Event-ID": str(last_seen)},
        ))
        assert len(resumed) == 2
        assert all(seq > last_seen for seq, _, _ in resumed)

    def test_explicit_since_wins_over_last_event_id(self, server):
        _, now = _get(server.url + "/events?timeout_s=0")
        _solve(server, power=44.0)
        frames = _parse_sse(_get_raw(
            server.url + f"/events?since={now['cursor']}&max_events=1",
            {"Accept": "text/event-stream", "Last-Event-ID": "999999"},
        ))
        assert len(frames) == 1 and frames[0][0] == now["cursor"] + 1


class TestMetricsEndpoint:
    def test_prometheus_exposition_parses_and_counts(self, server):
        _solve(server, power=51.0)
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "# HELP repro_requests_total" in text
        assert "# TYPE repro_requests_total counter" in text
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            float(value)  # every sample line ends in a number
            samples[name] = float(value)
        assert samples["repro_requests_total"] >= 1
        assert 'repro_backend_requests_total{backend="fvm"}' in samples
        assert 'repro_backend_latency_samples_dropped_total{backend="fvm"}' in samples
        assert samples["repro_events_published_total"] >= 2
        assert samples["repro_uptime_seconds"] > 0

    def test_metrics_history_returns_samples_and_rollup(self, server):
        _solve(server, power=52.0)
        status, body = _get(server.url + "/metrics/history")
        assert status == 200
        assert body["fields"][0] == "ts"
        assert body["samples"], "sampler should have ticked at least once"
        assert "requests_total" in body["samples"][-1]
        assert body["rollup"]["samples"] >= 1
        assert body["interval_s"] == 0.2

    def test_metrics_history_bad_window_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/metrics/history?window_s=banana")
        assert excinfo.value.code == 400


class TestHealthEnrichment:
    def test_healthz_reports_sampler_uptime_and_last_alert(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["uptime_s"] > 0
        sampler = body["sampler"]
        assert sampler["alive"] is True
        assert sampler["ticks"] >= 1
        assert sampler["errors"] == 0
        assert "last_alert" in body

    def test_stats_exposes_event_bus_and_samples_dropped(self, server):
        _solve(server, power=53.0)
        _, stats = _get(server.url + "/stats")
        assert stats["events"]["published"] >= 2
        assert "by_kind" in stats["events"]
        assert stats["backends"]["fvm"]["samples_dropped"] == 0


class TestAccessLog:
    def test_log_json_emits_one_line_per_request(self, capsys):
        engine = MicroBatchEngine(build_backends(), max_batch_size=4, max_wait_ms=1.0)
        with ThermalServer(engine, port=0, log_json=True,
                           sample_interval_s=60.0) as running:
            _solve(running, power=61.0)
            _get(running.url + "/healthz")
        lines = [json.loads(line) for line in capsys.readouterr().err.splitlines()
                 if line.startswith("{")]
        solves = [rec for rec in lines if rec["path"] == "/solve"]
        healths = [rec for rec in lines if rec["path"] == "/healthz"]
        assert len(solves) == 1 and len(healths) == 1
        record = solves[0]
        assert record["method"] == "POST" and record["status"] == 200
        assert record["latency_ms"] > 0
        assert record["trace_id"]
        assert record["backend"] == "fvm"
        assert record["cached"] is False and record["degraded"] is False

    def test_plain_text_log_stays_the_default(self, capsys):
        engine = MicroBatchEngine(build_backends(), max_batch_size=4, max_wait_ms=1.0)
        with ThermalServer(engine, port=0, sample_interval_s=60.0) as running:
            _solve(running, power=62.0)
        json_lines = [line for line in capsys.readouterr().err.splitlines()
                      if line.startswith("{")]
        assert json_lines == []


class TestEngineEventFlow:
    def test_shared_bus_between_engine_and_server(self):
        """A bus attached to the engine up front is reused by the server."""
        bus = EventBus()
        engine = MicroBatchEngine(build_backends(), max_batch_size=4,
                                  max_wait_ms=1.0, events=bus)
        with ThermalServer(engine, port=0, sample_interval_s=60.0) as running:
            assert running.telemetry.bus is bus
            with bus.subscribe() as subscription:
                _solve(running, power=63.0)
                event = subscription.get(timeout=10.0)
                assert event is not None

    def test_queue_saturation_event_on_rejection(self):
        from repro.serving.engine import QueueFullError
        from repro.serving.request import ThermalRequest

        bus = EventBus()
        engine = MicroBatchEngine(build_backends(), max_batch_size=4,
                                  max_wait_ms=50.0, max_queue=1, events=bus)
        engine.start()
        try:
            engine.submit(ThermalRequest(chip="chip1", resolution=RES,
                                         assignment={}))
            with pytest.raises(QueueFullError):
                engine.submit(ThermalRequest(chip="chip1", resolution=RES,
                                             assignment={}))
        finally:
            engine.stop()
        kinds = [event.kind for event in bus.replay()]
        assert "queue_saturated" in kinds
