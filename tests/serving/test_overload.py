"""Overload behaviour: admission control, priority, TTL and size eviction.

Everything here is deterministic: queue compositions are forced by
submitting before :meth:`MicroBatchEngine.start`, slow backends are gated on
events rather than sleeps, and cache-expiry tests drive a fake clock.
"""

import threading

import pytest

from repro.api.pool import ResultCache
from repro.api.session import ThermalSession
from repro.serving.backends import Backend, build_backends
from repro.serving.engine import DEFAULT_PRIORITIES, MicroBatchEngine, QueueFullError
from repro.serving.request import ThermalRequest, ThermalResult

RES = 8


def _request(backend="fvm", power=20.0, chip="chip1"):
    return ThermalRequest.create(
        chip, total_power_W=power, resolution=RES, backend=backend
    )


class _RecordingBackend(Backend):
    """Answers instantly and records the dispatch order of its batches."""

    def __init__(self, name, log):
        self.name = name
        self._log = log

    def solve_batch(self, requests):
        self._log.append((self.name, len(requests)))
        return [
            ThermalResult(
                request_id=r.request_id, chip=r.chip, resolution=r.resolution,
                backend=self.name, max_K=350.0, min_K=300.0, mean_K=320.0,
                total_power_W=r.total_power_W,
            )
            for r in requests
        ]


class _GatedBackend(Backend):
    """Blocks inside solve_batch until released (deterministic busy worker)."""

    def __init__(self, name="fvm"):
        self.name = name
        self.entered = threading.Event()
        self.release = threading.Event()

    def solve_batch(self, requests):
        self.entered.set()
        assert self.release.wait(timeout=60), "test forgot to release the gate"
        return [
            ThermalResult(
                request_id=r.request_id, chip=r.chip, resolution=r.resolution,
                backend=self.name, max_K=350.0, min_K=300.0, mean_K=320.0,
                total_power_W=r.total_power_W,
            )
            for r in requests
        ]


class TestAdmissionControl:
    def test_queue_full_rejects_fast(self):
        engine = MicroBatchEngine(build_backends(), max_queue=2)
        engine.submit(_request(power=20))
        engine.submit(_request(power=21))
        with pytest.raises(QueueFullError, match="overloaded"):
            engine.submit(_request(power=22))
        assert engine.stats()["rejected_requests"] == 1
        assert engine.stats()["queue_depth"] == 2
        # The queued requests still complete once the engine runs.
        engine.start()
        engine.stop()
        assert engine.stats()["total_requests"] == 2

    def test_dispatch_frees_queue_slots(self):
        gated = _GatedBackend()
        engine = MicroBatchEngine({"fvm": gated}, max_queue=1, max_wait_ms=0.0)
        with engine:
            first = engine.submit(_request(power=20))
            # Once the worker picks the request up it no longer counts
            # against max_queue, so the next submit is admitted.
            assert gated.entered.wait(timeout=60)
            second = engine.submit(_request(power=21))
            gated.release.set()
            assert first.result(timeout=60).max_K == 350.0
            assert second.result(timeout=60).max_K == 350.0
        assert engine.stats()["rejected_requests"] == 0

    def test_unbounded_by_default(self):
        engine = MicroBatchEngine(build_backends())
        for index in range(64):
            engine.submit(_request(power=20 + index))
        assert engine.stats()["queue_depth"] == 64
        engine.start()
        engine.stop()

    def test_max_queue_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatchEngine(build_backends(), max_queue=0)


class TestPriorityOrdering:
    def test_cheap_backends_jump_heavy_queues(self):
        log = []
        backends = {
            "fvm": _RecordingBackend("fvm", log),
            "hotspot": _RecordingBackend("hotspot", log),
            "transient": _RecordingBackend("transient", log),
        }
        engine = MicroBatchEngine(backends, max_wait_ms=0.0)
        # Submission order: heavy first.  Priority dispatch must still answer
        # the hotspot group before fvm, and fvm before transient.
        for power in (20, 21):
            engine.submit(_request("transient", power))
        for power in (22, 23):
            engine.submit(_request("fvm", power))
        for power in (24, 25):
            engine.submit(_request("hotspot", power))
        engine.start()
        engine.stop()
        assert [name for name, _ in log] == ["hotspot", "fvm", "transient"]
        assert [count for _, count in log] == [2, 2, 2]

    def test_equal_priority_dispatches_oldest_first(self):
        log = []
        backends = {"fvm": _RecordingBackend("fvm", log)}
        engine = MicroBatchEngine(backends, max_wait_ms=0.0)
        engine.submit(_request("fvm", 20, chip="chip2"))
        engine.submit(_request("fvm", 21, chip="chip1"))
        engine.submit(_request("fvm", 22, chip="chip2"))
        engine.start()
        engine.stop()
        # chip2's group is oldest -> dispatches first and takes both chip2
        # requests; chip1 follows.
        assert [count for _, count in log] == [2, 1]

    def test_custom_priorities_override_defaults(self):
        log = []
        backends = {
            "fvm": _RecordingBackend("fvm", log),
            "hotspot": _RecordingBackend("hotspot", log),
        }
        engine = MicroBatchEngine(
            backends, max_wait_ms=0.0, priorities={"fvm": 0, "hotspot": 5}
        )
        engine.submit(_request("hotspot", 20))
        engine.submit(_request("fvm", 21))
        engine.start()
        engine.stop()
        assert [name for name, _ in log] == ["fvm", "hotspot"]

    def test_default_priorities_are_exposed_in_stats(self):
        engine = MicroBatchEngine(build_backends())
        stats = engine.stats()
        assert stats["starvation_age_s"] > 0
        for name, priority in DEFAULT_PRIORITIES.items():
            assert stats["backends"][name]["priority"] == priority

    def test_starved_low_priority_request_outranks_fresh_high_priority(self):
        """Aging bounds strict priority: a request older than the starvation
        age dispatches before fresh higher-priority arrivals."""
        import time as time_module
        from concurrent.futures import Future

        from repro.serving.engine import _Pending

        engine = MicroBatchEngine(build_backends(), starvation_age_s=5.0)
        now = time_module.perf_counter()

        def pending(backend, age_s):
            return _Pending(
                request=_request(backend), future=Future(), enqueued_at=now - age_s
            )

        fresh_hotspot = pending("hotspot", 0.001)
        young_fvm = pending("fvm", 1.0)
        starved_fvm = pending("fvm", 6.0)
        # Without starvation, hotspot (priority 0) wins over a young fvm.
        assert engine._select_head([young_fvm, fresh_hotspot]) is fresh_hotspot
        # Past the starvation age, the old fvm request outranks every tier.
        assert (
            engine._select_head([starved_fvm, fresh_hotspot, young_fvm]) is starved_fvm
        )

    def test_starvation_age_validation(self):
        with pytest.raises(ValueError, match="starvation_age_s"):
            MicroBatchEngine(build_backends(), starvation_age_s=0.0)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestResultCacheTTL:
    def test_entries_expire_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("a", "answer", 16)
        assert cache.get("a") == "answer"
        clock.advance(9.999)
        assert cache.get("a") == "answer"
        clock.advance(0.001)  # exactly at the TTL boundary -> expired
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["entries"] == 0
        assert stats["evictions"] == 0  # expiry is not an LRU eviction
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_put_sweeps_expired_entries_under_bound_pressure(self):
        """When an insert would otherwise LRU-evict, expired entries are
        swept first and counted as expirations, not evictions."""
        clock = FakeClock()
        cache = ResultCache(capacity=2, ttl_s=5.0, clock=clock)
        cache.put("a", "old", 16)
        cache.put("b", "old", 16)
        clock.advance(6.0)
        cache.put("c", "new", 16)  # at capacity -> sweep, not LRU eviction
        stats = cache.stats()
        assert stats["expirations"] == 2
        assert stats["evictions"] == 0
        assert stats["entries"] == 1
        assert cache.get("c") == "new"

    def test_put_without_pressure_skips_the_sweep(self):
        """No bound pressure -> O(1) insert; expired entries linger until a
        get() reaps them or pressure triggers a sweep."""
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl_s=5.0, clock=clock)
        cache.put("a", "old", 16)
        clock.advance(6.0)
        cache.put("b", "new", 16)
        assert len(cache) == 2  # 'a' still resident, just dead
        assert cache.get("a") is None  # lazily reaped on access
        assert cache.stats()["expirations"] == 1

    def test_reinsert_refreshes_the_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("a", "v1", 16)
        clock.advance(8.0)
        cache.put("a", "v2", 16)
        clock.advance(8.0)  # 16s after first insert, 8s after refresh
        assert cache.get("a") == "v2"

    def test_ttl_validation(self):
        with pytest.raises(ValueError, match="ttl"):
            ResultCache(ttl_s=0.0)

    def test_session_ttl_expires_cached_answers(self):
        clock = FakeClock()
        session = ThermalSession(
            result_cache=ResultCache(capacity=8, ttl_s=30.0, clock=clock)
        )
        first = session.solve("chip1", total_power_W=20, resolution=RES)
        assert not first.cached
        assert session.solve("chip1", total_power_W=20, resolution=RES).cached
        clock.advance(31.0)
        stale = session.solve("chip1", total_power_W=20, resolution=RES)
        assert not stale.cached
        assert session.stats()["result_cache"]["expirations"] == 1
        # The recomputed answer is identical and re-cached.
        assert stale.max_K == first.max_K
        assert session.solve("chip1", total_power_W=20, resolution=RES).cached

    def test_session_rejects_conflicting_cache_configuration(self):
        with pytest.raises(ValueError, match="not both"):
            ThermalSession(result_cache=ResultCache(), result_cache_ttl_s=5.0)


class TestSizeAwareEviction:
    def test_byte_budget_evicts_lru_first(self):
        cache = ResultCache(capacity=100, max_bytes=100)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        cache.get("a")  # refresh 'a' -> 'b' is now least recently used
        cache.put("c", "C", 40)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        stats = cache.stats()
        assert stats["evictions_bytes"] == 1
        assert stats["evictions_count"] == 0
        assert stats["evictions"] == 1
        assert stats["bytes"] <= 100

    def test_count_and_byte_evictions_are_counted_separately(self):
        by_count = ResultCache(capacity=2, max_bytes=1000)
        for key in ("a", "b", "c"):
            by_count.put(key, key, 10)
        assert by_count.stats()["evictions_count"] == 1
        assert by_count.stats()["evictions_bytes"] == 0

        by_bytes = ResultCache(capacity=100, max_bytes=25)
        for key in ("a", "b", "c"):
            by_bytes.put(key, key, 10)
        assert by_bytes.stats()["evictions_count"] == 0
        assert by_bytes.stats()["evictions_bytes"] == 1
        assert by_bytes.stats()["evictions"] == 1

    def test_session_surfaces_eviction_counters(self):
        session = ThermalSession(result_cache_max_bytes=1)
        # Summary answers are ~512 bytes, far above the 1-byte budget, so
        # nothing caches (oversized single answers are skipped outright).
        session.solve("chip1", total_power_W=20, resolution=RES)
        stats = session.stats()["result_cache"]
        assert set(stats) >= {
            "evictions", "evictions_count", "evictions_bytes", "expirations",
            "ttl_s", "max_bytes",
        }
        assert stats["entries"] == 0
