"""Tests for the micro-batching engine, backends and solver pool."""

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.serving.backends import (
    Backend,
    FVMBackend,
    HotSpotBackend,
    LRUPool,
    ModelRegistry,
    OperatorBackend,
    build_backends,
)
from repro.serving.engine import MicroBatchEngine
from repro.serving.request import ThermalRequest, ThermalResult
from repro.solvers.fvm import FVMSolver
from repro.solvers.hotspot import HotSpotModel

RES = 10  # tiny grids keep the exact solves fast


def _requests(chip, count, resolution=RES, backend="fvm", base_power=30.0):
    return [
        ThermalRequest.create(
            chip, total_power_W=base_power + 3.0 * i, resolution=resolution, backend=backend
        )
        for i in range(count)
    ]


class TestThermalRequest:
    def test_create_validates_and_normalises(self):
        request = ThermalRequest.create("CHIP1", total_power_W=40, resolution="16")
        assert request.chip == "chip1"
        assert request.resolution == 16
        assert abs(request.total_power_W - 40.0) < 1e-9
        assert request.group_key == ("chip1", 16, "fvm", False)

    def test_unknown_chip_and_backend_rejected(self):
        with pytest.raises(KeyError):
            ThermalRequest.create("chip9", total_power_W=10)
        with pytest.raises(ValueError):
            ThermalRequest.create("chip1", total_power_W=10, backend="comsol")

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            ThermalRequest.create("chip1", total_power_W=10, resolution=2)
        with pytest.raises(ValueError):
            ThermalRequest.create("chip1", total_power_W=10, resolution="many")
        with pytest.raises(ValueError, match="integer"):
            ThermalRequest.create("chip1", total_power_W=10, resolution=32.9)

    def test_powers_and_total_power_together_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            ThermalRequest.create(
                "chip1", powers={"core_layer/Core": 5.0}, total_power_W=50.0
            )
        with pytest.raises(ValueError, match="not both"):
            ThermalRequest.from_payload(
                {"chip": "chip1", "powers": {"core_layer/Core": 5.0}, "total_power": 50}
            )

    def test_unknown_block_and_negative_power_rejected(self):
        with pytest.raises(KeyError):
            ThermalRequest.create("chip1", powers={"no_such/block": 5.0})
        with pytest.raises(ValueError):
            ThermalRequest.create("chip1", powers={"core_layer/Core": -1.0})

    def test_allowed_backends_overrides_the_builtin_list(self):
        request = ThermalRequest.create(
            "chip1", total_power_W=10, backend="transient",
            allowed_backends=("fvm", "transient"),
        )
        assert request.backend == "transient"
        with pytest.raises(ValueError, match="unknown backend"):
            ThermalRequest.create(
                "chip1", total_power_W=10, backend="hotspot", allowed_backends=("fvm",)
            )

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            ThermalRequest.from_payload({"chip": "chip1", "watts": 10})
        with pytest.raises(ValueError, match="required 'chip'"):
            ThermalRequest.from_payload({"total_power": 10})


class TestMicroBatching:
    def test_batched_group_equals_single_shot_solves(self):
        """The acceptance bar: micro-batched fvm answers == FVMSolver.solve."""
        requests = _requests("chip1", 6) + _requests("chip2", 3)
        engine = MicroBatchEngine(build_backends(), max_batch_size=16, max_wait_ms=5.0)
        with engine:
            results = engine.solve_many(requests)
        for request, result in zip(requests, results):
            reference = FVMSolver(get_chip(request.chip), nx=RES).solve(request.assignment)
            assert abs(result.max_K - reference.max_K) <= 1e-9
            assert abs(result.mean_K - reference.mean_K) <= 1e-9

    def test_same_key_requests_share_one_dispatch(self):
        engine = MicroBatchEngine(build_backends(), max_batch_size=16)
        futures = [engine.submit(r) for r in _requests("chip1", 6)]
        engine.start()  # queued before start => exactly one group dispatch
        results = [f.result(timeout=60) for f in futures]
        engine.stop()
        assert all(result.batch_size == 6 for result in results)
        stats = engine.stats()["backends"]["fvm"]
        assert stats["requests"] == 6
        assert stats["batches"] == 1
        assert stats["mean_batch_size"] == 6.0

    def test_mixed_keys_split_into_groups(self):
        engine = MicroBatchEngine(build_backends(), max_batch_size=16)
        requests = _requests("chip1", 4) + _requests("chip2", 2) + _requests(
            "chip1", 2, backend="hotspot"
        )
        futures = [engine.submit(r) for r in requests]
        engine.start()
        results = [f.result(timeout=60) for f in futures]
        engine.stop()
        assert [r.batch_size for r in results] == [4, 4, 4, 4, 2, 2, 2, 2]
        assert {r.backend for r in results[:6]} == {"fvm"}
        assert {r.backend for r in results[6:]} == {"hotspot"}

    def test_max_batch_size_bounds_groups(self):
        engine = MicroBatchEngine(build_backends(), max_batch_size=4)
        futures = [engine.submit(r) for r in _requests("chip1", 10)]
        engine.start()
        results = [f.result(timeout=60) for f in futures]
        engine.stop()
        assert max(r.batch_size for r in results) <= 4
        assert engine.stats()["backends"]["fvm"]["batches"] >= 3

    def test_submit_unknown_backend_raises(self):
        engine = MicroBatchEngine({"fvm": FVMBackend()})
        request = ThermalRequest.create("chip1", total_power_W=10, backend="hotspot")
        with pytest.raises(KeyError, match="not enabled"):
            engine.submit(request)

    def test_backend_errors_propagate_to_futures(self):
        engine = MicroBatchEngine(build_backends())  # no operator models loaded
        request = ThermalRequest.create(
            "chip1", total_power_W=10, resolution=RES, backend="operator"
        )
        with engine:
            future = engine.submit(request)
            with pytest.raises(KeyError, match="no operator model registered"):
                future.result(timeout=60)
        assert engine.stats()["backends"]["operator"]["errors"] == 1

    def test_submit_after_stop_raises_instead_of_hanging(self):
        engine = MicroBatchEngine(build_backends())
        engine.start()
        engine.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            engine.submit(_requests("chip1", 1)[0])

    def test_stats_shape(self):
        engine = MicroBatchEngine(build_backends(), max_wait_ms=0.5)
        with engine:
            engine.solve(ThermalRequest.create("chip1", total_power_W=20, resolution=RES))
        stats = engine.stats()
        assert stats["total_requests"] == 1
        fvm = stats["backends"]["fvm"]
        assert fvm["latency_ms"]["p95"] >= fvm["latency_ms"]["p50"] > 0
        assert fvm["solver_pool"]["misses"] == 1


class TestLRUPool:
    def test_eviction_order_and_counters(self):
        pool = LRUPool(capacity=2)
        built = []

        def make(tag):
            def build():
                built.append(tag)
                return tag

            return build

        assert pool.get("a", make("a")) == "a"
        assert pool.get("b", make("b")) == "b"
        assert pool.get("a", make("a2")) == "a"  # hit refreshes recency
        assert pool.get("c", make("c")) == "c"  # evicts 'b'
        assert pool.get("b", make("b2")) == "b2"  # rebuilt after eviction
        assert built == ["a", "b", "c", "b2"]
        stats = pool.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 4
        assert stats["evictions"] == 2
        assert stats["entries"] == 2

    def test_fvm_backend_pool_eviction(self):
        backend = FVMBackend(pool_size=1)
        # Distinct power maps per call: identical queries would short-circuit
        # in the session result cache and never consult the solver pool.
        for index, resolution in enumerate((8, 10, 8)):
            backend.solve_batch(
                _requests("chip1", 1, resolution=resolution, base_power=30.0 + index)
            )
        stats = backend.pool.stats()
        assert stats["misses"] == 3  # the second res-8 solver was evicted
        assert stats["evictions"] == 2
        backend.solve_batch(_requests("chip1", 1, resolution=8, base_power=60.0))
        assert backend.pool.stats()["hits"] == 1


class _InflatedSurrogate(Backend):
    """Stands in for an operator model that predicts too-hot fields."""

    name = "operator"

    def __init__(self, predicted_max_K):
        self.predicted_max_K = predicted_max_K
        self.calls = 0

    def solve_batch(self, requests):
        self.calls += 1
        return [
            ThermalResult(
                request_id=r.request_id,
                chip=r.chip,
                resolution=r.resolution,
                backend=self.name,
                max_K=self.predicted_max_K,
                min_K=300.0,
                mean_K=320.0,
                total_power_W=r.total_power_W,
            )
            for r in requests
        ]


class TestRefineGuard:
    def test_hot_surrogate_answers_are_resolved_exactly(self):
        surrogate = _InflatedSurrogate(predicted_max_K=420.0)
        backends = {"fvm": FVMBackend(), "operator": surrogate}
        engine = MicroBatchEngine(backends, refine_threshold_K=400.0)
        request = ThermalRequest.create(
            "chip1", total_power_W=30, resolution=RES, backend="operator"
        )
        with engine:
            result = engine.solve(request)
        assert result.refined
        assert result.backend == "fvm"
        reference = FVMSolver(get_chip("chip1"), nx=RES).solve(request.assignment)
        assert abs(result.max_K - reference.max_K) <= 1e-9
        assert engine.stats()["backends"]["operator"]["refined"] == 1

    def test_cool_surrogate_answers_pass_through(self):
        surrogate = _InflatedSurrogate(predicted_max_K=350.0)
        engine = MicroBatchEngine(
            {"fvm": FVMBackend(), "operator": surrogate}, refine_threshold_K=400.0
        )
        request = ThermalRequest.create(
            "chip1", total_power_W=30, resolution=RES, backend="operator"
        )
        with engine:
            result = engine.solve(request)
        assert not result.refined
        assert result.backend == "operator"
        assert result.max_K == 350.0

    def test_nan_surrogate_prediction_trips_the_guard(self):
        surrogate = _InflatedSurrogate(predicted_max_K=float("nan"))
        engine = MicroBatchEngine(
            {"fvm": FVMBackend(), "operator": surrogate}, refine_threshold_K=400.0
        )
        request = ThermalRequest.create(
            "chip1", total_power_W=30, resolution=RES, backend="operator"
        )
        with engine:
            result = engine.solve(request)
        assert result.refined
        assert np.isfinite(result.max_K)

    def test_nan_result_serialises_to_valid_json(self):
        import json

        result = ThermalResult(
            request_id="r", chip="chip1", resolution=8, backend="operator",
            max_K=float("nan"), min_K=300.0, mean_K=float("inf"), total_power_W=10.0,
        )
        encoded = json.dumps(result.to_json())
        decoded = json.loads(encoded)  # strict parsers must accept it
        assert decoded["max_K"] is None
        assert decoded["mean_K"] is None
        assert decoded["min_K"] == 300.0

    def test_failing_refine_falls_back_to_surrogate_answer(self):
        class _BrokenExact(Backend):
            name = "fvm"

            def solve_batch(self, requests):
                raise RuntimeError("factorisation exploded")

        surrogate = _InflatedSurrogate(predicted_max_K=420.0)
        engine = MicroBatchEngine(
            {"fvm": _BrokenExact(), "operator": surrogate}, refine_threshold_K=400.0
        )
        request = ThermalRequest.create(
            "chip1", total_power_W=30, resolution=RES, backend="operator"
        )
        with engine:
            result = engine.solve(request)  # must not raise
        assert not result.refined
        assert result.backend == "operator"
        assert result.max_K == 420.0
        assert engine.stats()["backends"]["fvm"]["errors"] == 1

    def test_cold_answers_release_before_refine_completes(self):
        import time as time_module

        class _MixedSurrogate(Backend):
            name = "operator"

            def solve_batch(self, requests):
                return [
                    ThermalResult(
                        request_id=r.request_id, chip=r.chip, resolution=r.resolution,
                        backend=self.name, max_K=(420.0 if i == 0 else 350.0),
                        min_K=300.0, mean_K=320.0, total_power_W=r.total_power_W,
                    )
                    for i, r in enumerate(requests)
                ]

        class _SlowExact(Backend):
            name = "fvm"

            def solve_batch(self, requests):
                time_module.sleep(0.5)
                return [
                    ThermalResult(
                        request_id=r.request_id, chip=r.chip, resolution=r.resolution,
                        backend=self.name, max_K=400.0, min_K=300.0, mean_K=330.0,
                        total_power_W=r.total_power_W,
                    )
                    for r in requests
                ]

        engine = MicroBatchEngine(
            {"fvm": _SlowExact(), "operator": _MixedSurrogate()},
            refine_threshold_K=400.0,
        )
        hot_req, cold_req = _requests("chip1", 2, backend="operator")
        hot_future = engine.submit(hot_req)
        cold_future = engine.submit(cold_req)
        start = time_module.perf_counter()
        engine.start()
        cold = cold_future.result(timeout=60)
        cold_elapsed = time_module.perf_counter() - start
        hot = hot_future.result(timeout=60)
        hot_elapsed = time_module.perf_counter() - start
        engine.stop()
        # The guard-passing answer must not wait for the exact re-solve.
        assert not cold.refined and cold.backend == "operator"
        assert cold_elapsed < 0.4
        assert hot.refined and hot.backend == "fvm"
        assert hot_elapsed >= 0.5

    def test_refine_requires_configured_backend(self):
        with pytest.raises(ValueError, match="refine backend"):
            MicroBatchEngine(
                {"operator": _InflatedSurrogate(400.0)}, refine_threshold_K=390.0
            )


class TestHotSpotBackend:
    def test_solves_and_reports_hotspot_block_centre(self):
        backend = HotSpotBackend()
        [result] = backend.solve_batch(_requests("chip1", 1, backend="hotspot"))
        reference = HotSpotModel(get_chip("chip1")).solve(
            _requests("chip1", 1)[0].assignment
        )
        assert abs(result.max_K - reference.max_K) <= 1e-9
        assert set(result.hotspot) == {"x_mm", "y_mm", "temperature_K"}

    def test_include_maps_rasterises_layers(self):
        request = ThermalRequest.create(
            "chip1", total_power_W=40, resolution=12, backend="hotspot", include_maps=True
        )
        [result] = HotSpotBackend().solve_batch([request])
        assert set(result.layer_maps) == set(get_chip("chip1").power_layer_names)
        assert all(m.shape == (12, 12) for m in result.layer_maps.values())


class TestModelRegistry:
    def test_lookup_missing_gives_helpful_error(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError, match="no operator model registered"):
            registry.lookup("chip1", 32)

    def test_operator_backend_reports_model_count(self):
        backend = OperatorBackend()
        assert backend.stats() == {"models": 0}

    def test_registry_rejects_output_channel_mismatch(self, tmp_path, rng):
        from repro.operators.factory import build_operator, save_operator, load_operator

        model = build_operator("fno", 2, 3, {"width": 8, "modes1": 3, "modes2": 3}, rng)
        path = tmp_path / "bad_out.npz"
        save_operator(model, str(path), chip_name="chip1", resolution=12)
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="output channels"):
            registry.register(load_operator(str(path)), path=str(path))
