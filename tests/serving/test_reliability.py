"""Fault-tolerance plane: deadlines, shutdown, breakers, fallback, chaos.

Deterministic throughout: queue compositions are forced by submitting before
:meth:`MicroBatchEngine.start`, deadlines use real but generous margins only
where a queue must *hold* work (never to race a solver), and the chaos
acceptance test drives a closed-loop client so every injected fault maps to
exactly one counter.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api.session import ThermalSession
from repro.runtime.faults import FaultPlan, InjectedFault
from repro.runtime.plane import DeadlineExceeded, ProcessPlane, _stable_slot
from repro.runtime.tasks import BackendSpec, backend_state_key
from repro.serving.backends import Backend, build_backends
from repro.serving.engine import EngineStopped, MicroBatchEngine
from repro.serving.request import ThermalRequest, ThermalResult
from repro.serving.server import ThermalServer

RES = 8


def _request(backend="fvm", power=20.0, chip="chip1", deadline_ms=None):
    return ThermalRequest.create(
        chip, total_power_W=power, resolution=RES, backend=backend,
        deadline_ms=deadline_ms,
    )


def _get(url):
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class _RecordingBackend(Backend):
    """Answers instantly and records how many requests reached it."""

    def __init__(self, name="fvm"):
        self.name = name
        self.seen = 0

    def solve_batch(self, requests):
        self.seen += len(requests)
        return [
            ThermalResult(
                request_id=r.request_id, chip=r.chip, resolution=r.resolution,
                backend=self.name, max_K=350.0, min_K=300.0, mean_K=320.0,
                total_power_W=r.total_power_W,
            )
            for r in requests
        ]


class TestDeadlines:
    def test_request_deadline_ms_becomes_absolute(self):
        before = time.monotonic()
        request = _request(deadline_ms=5000)
        assert before + 4.0 < request.deadline < time.monotonic() + 5.0
        assert not request.expired()
        assert _request().deadline is None

    @pytest.mark.parametrize("bad", ["soon", -5, 0, float("inf")])
    def test_bad_deadline_ms_rejected(self, bad):
        with pytest.raises(ValueError, match="deadline_ms"):
            ThermalRequest.from_payload(
                {"chip": "chip1", "total_power": 20, "deadline_ms": bad}
            )

    def test_expired_on_submit_is_shed_not_solved(self):
        backend = _RecordingBackend()
        engine = MicroBatchEngine({"fvm": backend})
        request = _request(deadline_ms=1)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded, match="shed"):
            engine.submit(request)
        assert backend.seen == 0
        assert engine.stats()["backends"]["fvm"]["shed"] == 1
        assert engine.stats()["shed_requests"] == 1

    def test_expired_while_queued_is_shed_at_dispatch(self):
        backend = _RecordingBackend()
        engine = MicroBatchEngine({"fvm": backend})
        # Queue three requests before the engine runs; two with a budget that
        # will be spent by the time the workers start, one without.
        shed_futures = [engine.submit(_request(power=p, deadline_ms=30))
                        for p in (20.0, 21.0)]
        kept_future = engine.submit(_request(power=22.0))
        time.sleep(0.1)
        engine.start()
        engine.stop()
        for future in shed_futures:
            with pytest.raises(DeadlineExceeded, match="budget"):
                future.result(timeout=5)
        assert kept_future.result(timeout=5).max_K == 350.0
        assert backend.seen == 1  # the shed requests never reached the backend
        assert engine.stats()["backends"]["fvm"]["shed"] == 2


class TestEngineStopped:
    def test_submit_after_stop_raises_engine_stopped(self):
        engine = MicroBatchEngine({"fvm": _RecordingBackend()})
        engine.start()
        engine.stop()
        with pytest.raises(EngineStopped, match="stopped"):
            engine.submit(_request())
        # Back-compat: callers catching the historical RuntimeError still do.
        assert issubclass(EngineStopped, RuntimeError)

    def test_stop_fails_pending_futures_instead_of_hanging(self):
        engine = MicroBatchEngine({"fvm": _RecordingBackend()})
        futures = [engine.submit(_request(power=p)) for p in (20.0, 21.0)]
        engine.stop()  # never started: the queued futures must not hang
        for future in futures:
            with pytest.raises(EngineStopped, match="stopped"):
                future.result(timeout=5)

    def test_http_maps_engine_stopped_to_503(self):
        engine = MicroBatchEngine(build_backends())
        with ThermalServer(engine, port=0) as server:
            engine.stop()
            status, body = _post(
                server.url + "/solve", {"chip": "chip1", "total_power": 20}
            )
            assert status == 503
            assert "stopped" in body["error"]


class TestHealthDegraded:
    def test_open_breaker_degrades_healthz(self):
        session = ThermalSession(
            breaker_threshold=1, faults=FaultPlan.parse("fail-backend:fvm@1")
        )
        with pytest.raises(InjectedFault):
            session.solve("chip1", 20.0, resolution=RES, backend="fvm")
        engine = MicroBatchEngine(build_backends(session=session))
        with ThermalServer(engine, port=0, session=session) as server:
            status, body = _get(server.url + "/healthz")
            assert status == 200
            assert body["status"] == "degraded"
            assert body["open_breakers"] == ["fvm"]
            assert body["plane_workers_dead"] == 0


def _slot0_resolution(chip_name="chip1", workers=2):
    """A resolution whose fvm warm-state key routes to plane slot 0."""
    from repro.chip.designs import get_chip

    chip = get_chip(chip_name)
    for resolution in range(RES, RES + 16):
        spec = BackendSpec(chip=chip, resolution=resolution, backend="fvm")
        if _stable_slot(backend_state_key(spec), workers) == 0:
            return resolution
    raise AssertionError("no resolution maps to slot 0 — routing changed?")


class TestChaosAcceptance:
    """The issue's acceptance drill: one worker killed, one breaker opened.

    Every client request must still be answered — by plane retry for the
    kill, by a provenance-stamped degraded fallback for the breaker — with
    zero hung futures, and the shed/retry/breaker counters must match the
    injected fault plan exactly.
    """

    def test_kill_worker_and_open_breaker_lose_no_request(self):
        plan = FaultPlan.parse("kill-worker:0@2,fail-backend:transient@3")
        resolution = _slot0_resolution(workers=2)
        plane = ProcessPlane(workers=2, faults=plan)
        session = ThermalSession(
            plane=plane, fallback=True, breaker_threshold=3, faults=plan
        )
        engine = MicroBatchEngine(build_backends(session=session))
        try:
            with ThermalServer(engine, port=0, session=session) as server:
                # --- kill leg: closed-loop fvm requests pinned (by warm-state
                # key) to slot 0.  Tasks 1 and 2 complete there; the worker
                # dies receiving task 3, which a healthy worker must answer.
                fvm_answers = []
                for index in range(3):
                    status, body = _post(
                        server.url + "/solve",
                        {"chip": "chip1", "resolution": resolution,
                         "backend": "fvm", "total_power": 30.0 + index},
                    )
                    assert status == 200, body
                    fvm_answers.append(body)
                assert all(a["backend"] == "fvm" for a in fvm_answers)
                assert not any(a.get("degraded") for a in fvm_answers)

                # --- breaker leg: the first three transient solves raise
                # injected faults (opening the breaker at threshold 3); the
                # fourth is refused by the open breaker.  All four must come
                # back 200 as degraded fallback answers.
                transient_answers = []
                for index in range(4):
                    status, body = _post(
                        server.url + "/solve",
                        {"chip": "chip1", "resolution": resolution,
                         "backend": "transient", "total_power": 50.0 + index},
                    )
                    assert status == 200, body
                    transient_answers.append(body)
                for body in transient_answers:
                    assert body["degraded"] is True
                    assert body["requested_backend"] == "transient"
                    assert body["backend"] == "fvm"  # first chain fallback

                status, stats = _get(server.url + "/stats")
                assert status == 200
                # No request failed anywhere in the engine.
                assert stats["backends"]["fvm"]["errors"] == 0
                assert stats["backends"]["transient"]["errors"] == 0
                assert stats["shed_requests"] == 0

                # Plane counters match the kill directive exactly: one dead
                # worker, one lost task recovered by retry, nothing errored.
                plane_stats = stats["session"]["plane"]
                assert plane_stats["workers_dead"] == 1
                assert plane_stats["retried"] == 1
                assert plane_stats["errors"] == 0

                # Breaker counters match the backend directive exactly.
                reliability = stats["session"]["reliability"]
                transient_breaker = reliability["breakers"]["transient"]
                assert transient_breaker["state"] == "open"
                assert transient_breaker["opened"] == 1
                assert transient_breaker["failures"] == 3
                assert reliability["breaker_rejections"] == 1
                assert reliability["fallbacks"] == 4
                assert reliability["faults"]["backends"]["transient"] == {
                    "calls": 3, "injected_failures": 3, "injected_delays": 0,
                }

                status, health = _get(server.url + "/healthz")
                assert health["status"] == "degraded"
                assert health["open_breakers"] == ["transient"]
                assert health["plane_workers_dead"] == 1
        finally:
            plane.close()
