"""End-to-end tests of the HTTP JSON API (stdlib client, real sockets)."""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.chip.designs import get_chip
from repro.data.generation import DatasetSpec, generate_dataset
from repro.operators.factory import build_operator, save_operator
from repro.serving.backends import build_backends
from repro.serving.engine import MicroBatchEngine
from repro.serving.server import ThermalServer
from repro.solvers.fvm import FVMSolver
from repro.training.trainer import Trainer, TrainingConfig

RES = 10


def _get(url):
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def trained_model_path(tmp_path_factory):
    """A tiny FNO surrogate trained for chip1 at the test resolution."""
    dataset = generate_dataset(
        DatasetSpec(chip_name="chip1", resolution=RES, num_samples=8, seed=7)
    )
    model = build_operator(
        "fno",
        dataset.num_input_channels,
        dataset.num_output_channels,
        {"width": 8, "modes1": 3, "modes2": 3},
        np.random.default_rng(0),
    )
    trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=4, seed=0))
    trainer.fit(dataset)
    path = tmp_path_factory.mktemp("models") / "fno_chip1.npz"
    save_operator(
        model,
        str(path),
        input_normalizer=trainer.input_normalizer,
        output_normalizer=trainer.output_normalizer,
        chip_name=dataset.chip_name,
        resolution=dataset.resolution,
    )
    return str(path)


@pytest.fixture(scope="module")
def server(trained_model_path):
    engine = MicroBatchEngine(
        build_backends(model_paths=[trained_model_path]),
        max_batch_size=16,
        max_wait_ms=2.0,
    )
    with ThermalServer(engine, port=0) as running:
        yield running


class TestInfoEndpoints:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["engine_running"] is True
        assert set(body["backends"]) == {"fvm", "operator", "hotspot", "transient"}

    def test_chips_lists_blocks(self, server):
        status, body = _get(server.url + "/chips")
        assert status == 200
        names = [chip["name"] for chip in body["chips"]]
        assert names == ["chip1", "chip2", "chip3"]
        assert all(chip["blocks"] for chip in body["chips"])

    def test_models_lists_registered_surrogate(self, server, trained_model_path):
        status, body = _get(server.url + "/models")
        assert status == 200
        [model] = body["models"]
        assert model["operator"] == "fno"
        assert model["chip"] == "chip1"
        assert model["resolution"] == RES
        assert model["path"] == trained_model_path

    def test_stats_counts_solves(self, server):
        _post(server.url + "/solve", {"chip": "chip1", "total_power": 25, "resolution": RES})
        status, body = _get(server.url + "/stats")
        assert status == 200
        assert body["total_requests"] >= 1
        assert "fvm" in body["backends"]

    def test_stats_surfaces_result_cache_hits(self, server):
        """Repeated same-power-map solves hit the session result cache."""
        body = {"chip": "chip3", "total_power": 33.5, "resolution": RES}
        status, first = _post(server.url + "/solve", body)
        assert status == 200 and "cached" not in first
        status, second = _post(server.url + "/solve", body)
        assert status == 200
        assert second["cached"] is True
        assert second["max_K"] == first["max_K"]
        _, stats = _get(server.url + "/stats")
        cache = stats["session"]["result_cache"]
        assert cache["hits"] >= 1
        assert cache["misses"] >= 1
        # The session-wide cache is reported once, not duplicated per backend.
        assert "result_cache" not in stats["backends"]["fvm"]

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


class TestSolveEndpoint:
    def test_concurrent_requests_two_chips_two_backends(self, server):
        """Acceptance: concurrent /solve for >=2 chips and >=2 backends."""
        bodies = []
        for chip in ("chip1", "chip2"):
            for backend in ("fvm", "hotspot"):
                for index in range(3):
                    bodies.append(
                        {
                            "chip": chip,
                            "backend": backend,
                            "resolution": RES,
                            "total_power": 20.0 + 5.0 * index,
                        }
                    )
        with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
            responses = list(pool.map(lambda b: _post(server.url + "/solve", b), bodies))
        assert all(status == 200 for status, _ in responses)
        for body, (_, answer) in zip(bodies, responses):
            assert answer["chip"] == body["chip"]
            assert answer["backend"] == body["backend"]
            assert answer["max_K"] > 300.0
            if body["backend"] == "fvm":
                reference = FVMSolver(get_chip(body["chip"]), nx=RES).solve(
                    {
                        name: body["total_power"] / len(get_chip(body["chip"]).flat_block_names())
                        for name in get_chip(body["chip"]).flat_block_names()
                    }
                )
                assert abs(answer["max_K"] - reference.max_K) <= 1e-6  # JSON rounds to 1e-6

    def test_explicit_powers_and_maps(self, server):
        status, body = _post(
            server.url + "/solve",
            {
                "chip": "chip1",
                "resolution": RES,
                "powers": {"core_layer/Core": 20.0},
                "include_maps": True,
            },
        )
        assert status == 200
        maps = body["layer_maps"]
        assert set(maps) == set(get_chip("chip1").power_layer_names)
        assert np.asarray(maps["core_layer"]).shape == (RES, RES)

    def test_transient_backend_answers(self, server):
        status, body = _post(
            server.url + "/solve",
            {"chip": "chip1", "resolution": 8, "backend": "transient", "total_power": 30},
        )
        assert status == 200
        assert body["backend"] == "transient"
        assert body["max_K"] > 300.0

    def test_session_registered_custom_chip_is_servable(self, server):
        """/chips and /solve agree on the session's chip registry."""
        import dataclasses

        custom = dataclasses.replace(get_chip("chip1"), name="custom_stack")
        server.session.register_chip(custom)
        _, chips = _get(server.url + "/chips")
        assert "custom_stack" in [chip["name"] for chip in chips["chips"]]
        status, body = _post(
            server.url + "/solve",
            {"chip": "custom_stack", "resolution": RES, "total_power": 20},
        )
        assert status == 200
        assert body["chip"] == "custom_stack"
        assert body["max_K"] > 300.0

    def test_operator_backend_answers(self, server):
        status, body = _post(
            server.url + "/solve",
            {"chip": "chip1", "resolution": RES, "backend": "operator", "total_power": 30},
        )
        assert status == 200
        assert body["backend"] == "operator"
        assert np.isfinite(body["max_K"])

    def test_operator_without_model_is_400(self, server):
        status, body = _post(
            server.url + "/solve",
            {"chip": "chip2", "resolution": RES, "backend": "operator", "total_power": 30},
        )
        assert status == 400
        assert "no operator model registered" in body["error"]

    def test_validation_errors_are_400(self, server):
        cases = [
            {"total_power": 10},  # missing chip
            {"chip": "chip9", "total_power": 10},
            {"chip": "chip1", "backend": "comsol", "total_power": 10},
            {"chip": "chip1", "powers": {"bogus/block": 1.0}},
            {"chip": "chip1", "powers": {"core_layer/Core": -5.0}},
            {"chip": "chip1", "resolution": 2, "total_power": 10},
        ]
        for body in cases:
            status, answer = _post(server.url + "/solve", body)
            assert status == 400, body
            assert answer["error"]

    def test_post_unknown_path_with_body_closes_connection(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.request("POST", "/nope", body=b'{"chip": "chip1"}')
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_body_without_content_length_is_400_and_closes_connection(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.putrequest("POST", "/solve")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_oversized_body_is_413_and_closes_connection(self, server):
        import http.client

        from repro.serving.server import MAX_BODY_BYTES

        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            # Announce an oversized body without sending it: the server must
            # answer 413 from the header alone (it never reads the body).
            connection.putrequest("POST", "/solve")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            # The unread body would desync the next keep-alive request, so
            # the server must tell the client to drop the connection.
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/solve", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 400
        assert "malformed JSON" in json.loads(excinfo.value.read())["error"]
