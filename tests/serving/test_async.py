"""Session-level async handles and the engine's future-based fan-out.

``ThermalSession.submit`` answers a future; ``ThermalSession.solve_many``
fans a mixed query list out across the session's batch path in one call;
``MicroBatchEngine.solve_many`` rides ``submit_many`` so one slow group in
a fan-out cannot serialise the others.
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.api.session import ThermalSession
from repro.serving.backends import Backend
from repro.serving.engine import MicroBatchEngine
from repro.serving.request import ThermalRequest, ThermalResult

RES = 10


class TestSessionSubmit:
    @pytest.fixture(scope="class")
    def session(self):
        return ThermalSession()

    def test_submit_answers_a_future_matching_solve(self, session):
        future = session.submit("chip1", total_power_W=40.0, resolution=RES)
        assert isinstance(future, Future)
        async_result = future.result(timeout=120)
        blocking = session.solve("chip1", total_power_W=40.0, resolution=RES)
        assert async_result.max_K == blocking.max_K
        assert async_result.mean_K == blocking.mean_K
        assert async_result.backend == "fvm"

    def test_submit_validates_eagerly(self, session):
        # Bad inputs raise in the caller's thread, not inside the future.
        with pytest.raises(KeyError):
            session.submit("no_such_chip", total_power_W=10.0)
        with pytest.raises(ValueError):
            session.submit("chip1", total_power_W=10.0, powers={"a/b": 1.0})

    def test_concurrent_submits_all_land(self, session):
        futures = [
            session.submit("chip1", total_power_W=20.0 + i, resolution=RES)
            for i in range(6)
        ]
        results = [f.result(timeout=120) for f in futures]
        maxes = [r.max_K for r in results]
        assert maxes == sorted(maxes)  # more watts, more kelvin


class TestSessionSolveMany:
    @pytest.fixture(scope="class")
    def session(self):
        return ThermalSession()

    def test_fan_out_matches_individual_solves(self, session):
        queries = [
            {"chip": "chip1", "total_power_W": 30.0, "resolution": RES},
            {"chip": "chip2", "total_power_W": 45.0, "resolution": RES},
            {"chip": "chip1", "total_power_W": 35.0, "resolution": RES,
             "backend": "hotspot"},
        ]
        results = session.solve_many(queries)
        assert len(results) == 3
        for query, result in zip(queries, results):
            reference = session.solve(**{
                {"total_power_W": "total_power_W"}.get(k, k): v
                for k, v in query.items()
            })
            assert result.chip == reference.chip
            assert result.max_K == reference.max_K
            assert result.backend == reference.backend

    def test_results_come_back_in_query_order(self, session):
        queries = [
            {"chip": "chip2", "total_power_W": 50.0, "resolution": RES},
            {"chip": "chip1", "total_power_W": 20.0, "resolution": RES},
            {"chip": "chip2", "total_power_W": 51.0, "resolution": RES},
        ]
        results = session.solve_many(queries)
        assert [r.chip for r in results] == ["chip2", "chip1", "chip2"]
        assert results[2].max_K > results[0].max_K

    def test_empty_and_invalid_queries(self, session):
        assert session.solve_many([]) == []
        with pytest.raises(ValueError, match="query 1"):
            session.solve_many([
                {"chip": "chip1", "total_power_W": 10.0},
                {"chip": "chip1", "wattage": 10.0},
            ])
        with pytest.raises(ValueError, match="'chip'"):
            session.solve_many([{"total_power_W": 10.0}])


class _SlowBackend(Backend):
    """Blocks until released — stands in for a glacial exact solver."""

    name = "fvm"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def solve_batch(self, requests):
        self.started.set()
        assert self.release.wait(timeout=60), "test forgot to release the backend"
        return [_result(r, self.name) for r in requests]


class _FastBackend(Backend):
    """Answers instantly — stands in for the surrogate."""

    name = "hotspot"

    def solve_batch(self, requests):
        return [_result(r, self.name) for r in requests]


def _result(request, backend):
    return ThermalResult(
        request_id=request.request_id, chip=request.chip,
        resolution=request.resolution, backend=backend,
        max_K=330.0, min_K=300.0, mean_K=315.0,
        total_power_W=request.total_power_W,
    )


class TestEngineFanOut:
    def test_submit_many_returns_one_future_per_request(self):
        engine = MicroBatchEngine({"hotspot": _FastBackend()})
        engine.start()
        try:
            requests = [
                ThermalRequest.create(
                    "chip1", total_power_W=20.0 + i, resolution=RES,
                    backend="hotspot",
                )
                for i in range(4)
            ]
            futures = engine.submit_many(requests)
            assert len(futures) == 4
            results = [f.result(timeout=60) for f in futures]
            assert [r.request_id for r in results] == [
                r.request_id for r in requests
            ]
        finally:
            engine.stop()

    def test_slow_exact_group_does_not_block_surrogate_answers(self):
        """The regression the async rework exists for: one stuck fvm
        request in a fan-out must not delay the hotspot answers riding the
        same ``solve_many`` call."""
        slow = _SlowBackend()
        engine = MicroBatchEngine({"fvm": slow, "hotspot": _FastBackend()})
        engine.start()
        try:
            stuck = ThermalRequest.create(
                "chip1", total_power_W=40.0, resolution=RES, backend="fvm"
            )
            quick = [
                ThermalRequest.create(
                    "chip1", total_power_W=20.0 + i, resolution=RES,
                    backend="hotspot",
                )
                for i in range(3)
            ]
            futures = engine.submit_many([stuck, *quick])
            assert slow.started.wait(timeout=30)
            # Every surrogate answer lands while the fvm batch is still
            # parked inside its backend.
            for future in futures[1:]:
                assert future.result(timeout=30).backend == "hotspot"
            assert not futures[0].done()
            slow.release.set()
            assert futures[0].result(timeout=30).backend == "fvm"
        finally:
            slow.release.set()
            engine.stop()

    def test_solve_many_shares_one_timeout_budget(self):
        slow = _SlowBackend()
        engine = MicroBatchEngine({"fvm": slow})
        engine.start()
        try:
            requests = [
                ThermalRequest.create(
                    "chip1", total_power_W=20.0 + i, resolution=RES,
                    backend="fvm",
                )
                for i in range(3)
            ]
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                engine.solve_many(requests, timeout=0.5)
            elapsed = time.monotonic() - started
            # One shared budget, not 0.5 s per request.
            assert elapsed < 1.4
        finally:
            slow.release.set()
            engine.stop()

    def test_solve_many_preserves_request_order(self):
        engine = MicroBatchEngine({"hotspot": _FastBackend()})
        engine.start()
        try:
            requests = [
                ThermalRequest.create(
                    "chip2", total_power_W=30.0 + i, resolution=RES,
                    backend="hotspot",
                )
                for i in range(5)
            ]
            results = engine.solve_many(requests, timeout=60)
            assert [r.request_id for r in results] == [
                r.request_id for r in requests
            ]
        finally:
            engine.stop()
