"""Define a custom 3D-IC and explore its thermal behaviour.

The library is not limited to the three paper chips: this example builds a
custom two-layer stack whose core layer uses the detailed Alpha 21264 (EV6)
functional-unit floorplan, registers it with a :class:`repro.ThermalSession`
so every backend can address it by name, runs a thermal what-if study
(moving power between the integer and floating-point clusters), and trains a
SAU-FNO surrogate for the new design with a few lines.

Run with:  python examples/custom_chip_design.py
"""

import numpy as np

import repro
from repro.chip import ChipStack, CoolingSpec, Layer, TSVArray
from repro.chip.designs import alpha21264_floorplan
from repro.chip.floorplan import grid_floorplan
from repro.chip.materials import SILICON, TIM
from repro.evaluation import format_table
from repro.evaluation.reporting import ascii_heatmap
from repro.training import TrainingConfig


def build_custom_chip() -> ChipStack:
    """A two-layer stack: EV6 core on top of a 2x2 L2-cache layer."""
    die = 14.0
    return ChipStack(
        name="ev6_stack",
        die_width_mm=die,
        die_height_mm=die,
        layers=[
            Layer(
                "cache_layer",
                thickness_mm=0.15,
                material=SILICON,
                floorplan=grid_floorplan(die, die, 2, 2, prefix="L2", name="cache_quadrants"),
                is_power_layer=True,
                tsv_array=TSVArray(),
            ),
            Layer(
                "ev6_core_layer",
                thickness_mm=0.15,
                material=SILICON,
                floorplan=alpha21264_floorplan(die, die),
                is_power_layer=True,
                tsv_array=TSVArray(),
            ),
            Layer("tim", thickness_mm=0.02, material=TIM),
        ],
        cooling=CoolingSpec(),
        power_budget_W=(40.0, 80.0),
    )


def what_if_study(session: repro.ThermalSession, chip: ChipStack, resolution: int) -> None:
    """Move 20 W between the integer and FP clusters and watch the hot spot."""
    base = {f"cache_layer/{name}": 4.0
            for name in chip.get_layer("cache_layer").floorplan.block_names}
    scenarios = {
        "integer-heavy": {"ev6_core_layer/IntExec": 22.0, "ev6_core_layer/IntQ": 6.0,
                          "ev6_core_layer/Icache": 6.0, "ev6_core_layer/Dcache": 8.0},
        "fp-heavy": {"ev6_core_layer/FPMul": 16.0, "ev6_core_layer/FPAdd": 12.0,
                     "ev6_core_layer/FPQ": 6.0, "ev6_core_layer/Dcache": 8.0},
    }
    rows = []
    for label, extra in scenarios.items():
        # The chip was registered with the session, so it is addressable by
        # name — same call as for the built-in benchmarks.
        solution = session.solve(
            "ev6_stack", {**base, **extra}, resolution=resolution, include_maps=True
        )
        rows.append(
            {
                "Scenario": label,
                "Total power (W)": round(solution.total_power_W, 1),
                "Junction T (K)": round(solution.max_K, 2),
                "Hotspot x (mm)": round(solution.hotspot["x_mm"], 1),
                "Hotspot y (mm)": round(solution.hotspot["y_mm"], 1),
            }
        )
        print(f"\nCore-layer temperature map, {label} workload:")
        print(ascii_heatmap(solution.layer_map("ev6_core_layer"), width=40))
    print()
    print(format_table(rows, title="What-if study on the EV6 stack"))


def train_surrogate(session: repro.ThermalSession, resolution: int,
                    samples: int, epochs: int) -> None:
    """Train a small SAU-FNO surrogate for the custom design."""
    print("\nTraining a SAU-FNO surrogate for the custom chip ...")
    dataset = session.generate_dataset(
        "ev6_stack", resolution=resolution, num_samples=samples, seed=1
    )
    split = dataset.split(0.75, rng=np.random.default_rng(1))
    trained = session.train(
        split.train,
        method="sau_fno",
        config={
            "width": 16, "modes1": 8, "modes2": 8,
            "num_fourier_layers": 1, "num_ufourier_layers": 1,
            "unet_base_channels": 8, "unet_levels": 2, "attention_dim": 16,
        },
        training=TrainingConfig(epochs=epochs, batch_size=4, learning_rate=2e-3),
        register=True,
    )
    report = session.evaluate(trained, split.test)
    print(format_table(
        [{"Design": "ev6_stack", **{k: round(v, 3) for k, v in report.as_dict().items()}}],
        title="Surrogate accuracy on the custom design",
    ))
    surrogate = session.solve("ev6_stack", total_power_W=60.0,
                              resolution=resolution, backend="operator")
    exact = session.solve("ev6_stack", total_power_W=60.0, resolution=resolution)
    print(f"operator backend now serves the custom chip: "
          f"{surrogate.max_K:.2f} K vs exact {exact.max_K:.2f} K")


def main(what_if_resolution: int = 40, surrogate_resolution: int = 24,
         samples: int = 32, epochs: int = 10) -> None:
    session = repro.ThermalSession()
    chip = session.register_chip(build_custom_chip())
    print(chip.summary())
    what_if_study(session, chip, what_if_resolution)
    train_surrogate(session, surrogate_resolution, samples, epochs)


if __name__ == "__main__":
    main()
