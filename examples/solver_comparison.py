"""Compare the thermal backends on the three benchmark chips (Table IV style).

One :class:`repro.ThermalSession`, one call signature, three engines: the
finite-volume backend at two mesh fidelities (standing in for COMSOL and
MTA), the HotSpot-style compact backend, and — on the smallest grid — the
transient backend integrated to quasi-steady state as a cross-check.  The
session answers them all through ``session.solve_batch`` and the unified
:class:`repro.ThermalSolution` makes the error-vs-reference comparison a
one-liner.

Run with:  python examples/solver_comparison.py
"""

import numpy as np

import repro
from repro.evaluation import format_table


def main(num_cases: int = 3, fine_resolution: int = 48,
         standard_resolution: int = 32, fine_cells_per_layer: int = 3,
         standard_cells_per_layer: int = 2) -> None:
    # Two sessions because the vertical discretisation is session-wide: the
    # "COMSOL role" uses the finest mesh (3 cells/layer), the "MTA role" the
    # data-generation mesh (2 cells/layer, matching DatasetSpec).
    fine_session = repro.ThermalSession(cells_per_layer=fine_cells_per_layer)
    session = repro.ThermalSession(cells_per_layer=standard_cells_per_layer)
    rows = []
    timing_rows = []
    for chip_name in session.list_chips():
        chip = session.get_chip(chip_name)
        sampler = repro.PowerSampler(chip)
        cases = sampler.sample_many(num_cases, np.random.default_rng(7))

        answers = {
            "fine": fine_session.solve_batch(chip_name, cases, resolution=fine_resolution),
            "standard": session.solve_batch(chip_name, cases, resolution=standard_resolution),
            "compact": session.solve_batch(
                chip_name, cases, resolution=standard_resolution, backend="hotspot"
            ),
        }

        for metric, pick in (("max", lambda s: s.max_K), ("min", lambda s: s.min_K)):
            rows.append(
                {
                    "Chip": chip_name,
                    "Metric": f"{metric.capitalize()}(K)",
                    "FVM fine (COMSOL role)": round(
                        float(np.mean([pick(s) for s in answers["fine"]])), 2),
                    "FVM standard (MTA role)": round(
                        float(np.mean([pick(s) for s in answers["standard"]])), 2),
                    "Compact (HotSpot role)": round(
                        float(np.mean([pick(s) for s in answers["compact"]])), 2),
                }
            )
        timing_rows.append(
            {
                "Chip": chip_name,
                "FVM fine (s/case)": round(
                    float(np.mean([s.solve_seconds for s in answers["fine"]])), 3),
                "FVM standard (s/case)": round(
                    float(np.mean([s.solve_seconds for s in answers["standard"]])), 3),
                "Compact (s/case)": round(
                    float(np.mean([s.solve_seconds for s in answers["compact"]])), 5),
                "Compact dMax (K)": round(
                    float(np.mean([
                        compact.error_vs(reference)["delta_max_K"]
                        for compact, reference in zip(answers["compact"], answers["standard"])
                    ])), 2),
            }
        )

    print(format_table(rows, title="Backend comparison (average over random power maps)"))
    print()
    print(format_table(timing_rows, title="Per-case runtime and compact-model error"))
    print()

    # Cross-check: the transient backend integrated to quasi-steady state
    # lands on the steady fvm answer (same spatial discretisation).
    chip_name = session.list_chips()[0]
    cross_resolution = min(16, standard_resolution)
    case = repro.PowerSampler(session.get_chip(chip_name)).sample(np.random.default_rng(7))
    steady = session.solve(chip_name, case, resolution=cross_resolution)
    quasi = session.solve(chip_name, case, resolution=cross_resolution, backend="transient")
    print(f"transient-to-steady cross-check on {chip_name}: "
          f"fvm {steady.max_K:.2f} K vs transient {quasi.max_K:.2f} K "
          f"(delta {quasi.error_vs(steady)['delta_max_K']:+.3f} K after "
          f"{quasi.provenance['num_steps']} implicit steps)")
    print()
    print("Note: the two FVM fidelities agree closely (the COMSOL-vs-MTA columns of "
          "Table IV), while the compact block-level model runs orders of magnitude "
          "faster but is markedly coarser: each block is isothermal, so its minimum "
          "temperature sits far above the field solvers' and sub-block hot spots are "
          "smeared out — the qualitative HotSpot-vs-FEM gap of Table IV.")
    print("For the full Table IV including the trained SAU-FNO column, run "
          "`pytest benchmarks/bench_table4_solver_comparison.py --benchmark-only`.")


if __name__ == "__main__":
    main()
