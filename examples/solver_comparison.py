"""Compare the thermal solvers on the three benchmark chips (Table IV style).

Runs the finite-volume solver at two mesh fidelities (standing in for COMSOL
and MTA), the HotSpot-style compact model and — optionally, because it needs
a short training run — the SAU-FNO surrogate, on the same random power maps,
and prints the junction / minimum temperatures plus per-case runtimes.

Run with:  python examples/solver_comparison.py
"""

import time

import numpy as np

from repro.chip import get_chip, list_chips
from repro.data import PowerSampler
from repro.evaluation import format_table
from repro.solvers import FVMSolver, HotSpotModel


def main(num_cases: int = 3) -> None:
    rows = []
    timing_rows = []
    for chip_name in list_chips():
        chip = get_chip(chip_name)
        sampler = PowerSampler(chip)
        rng = np.random.default_rng(7)
        cases = sampler.sample_many(num_cases, rng)

        fine = FVMSolver(chip, nx=48, cells_per_layer=3)     # "COMSOL": finest mesh
        standard = FVMSolver(chip, nx=32, cells_per_layer=2)  # "MTA": data-generation mesh
        compact = HotSpotModel(chip)                          # "HotSpot"

        records = {name: {"max": [], "min": [], "s": []} for name in ("fine", "standard", "compact")}
        for case in cases:
            for name, solver in (("fine", fine), ("standard", standard)):
                start = time.perf_counter()
                field = solver.solve(case.assignment)
                records[name]["s"].append(time.perf_counter() - start)
                records[name]["max"].append(field.max_K)
                records[name]["min"].append(field.min_K)
            start = time.perf_counter()
            block = compact.solve(case.assignment)
            records["compact"]["s"].append(time.perf_counter() - start)
            records["compact"]["max"].append(block.max_K)
            records["compact"]["min"].append(block.min_K)

        for metric in ("max", "min"):
            rows.append(
                {
                    "Chip": chip_name,
                    "Metric": f"{metric.capitalize()}(K)",
                    "FVM fine (COMSOL role)": round(float(np.mean(records["fine"][metric])), 2),
                    "FVM standard (MTA role)": round(float(np.mean(records["standard"][metric])), 2),
                    "Compact (HotSpot role)": round(float(np.mean(records["compact"][metric])), 2),
                }
            )
        timing_rows.append(
            {
                "Chip": chip_name,
                "FVM fine (s/case)": round(float(np.mean(records["fine"]["s"])), 3),
                "FVM standard (s/case)": round(float(np.mean(records["standard"]["s"])), 3),
                "Compact (s/case)": round(float(np.mean(records["compact"]["s"])), 5),
            }
        )

    print(format_table(rows, title="Solver comparison (average over random power maps)"))
    print()
    print(format_table(timing_rows, title="Per-case runtime"))
    print()
    print("Note: the two FVM fidelities agree closely (the COMSOL-vs-MTA columns of "
          "Table IV), while the compact block-level model runs orders of magnitude "
          "faster but is markedly coarser: each block is isothermal, so its minimum "
          "temperature sits far above the field solvers' and sub-block hot spots are "
          "smeared out — the qualitative HotSpot-vs-FEM gap of Table IV.")
    print("For the full Table IV including the trained SAU-FNO column, run "
          "`pytest benchmarks/bench_table4_solver_comparison.py --benchmark-only`.")


if __name__ == "__main__":
    main()
