"""Transient thermal response of Chip 1 to a workload power step.

The paper's evaluation is steady-state; its conclusion lists broader thermal
analysis tasks as future work.  This example uses the session facade's
transient endpoint (:meth:`repro.ThermalSession.solve_transient`, backed by
the backward-Euler solver in ``repro.solvers.transient``) to answer a
classic design question the steady solver cannot: *how fast* does the
junction temperature rise after a power step, and how long does the die take
to cool back down?

Run with:  python examples/transient_workload.py
"""

import repro
from repro.evaluation import format_table


def main(resolution: int = 16, cells_per_layer: int = 1,
         steps_per_time_constant: int = 4) -> None:
    session = repro.ThermalSession(cells_per_layer=cells_per_layer)
    chip = session.get_chip("chip1")
    print(chip.summary())

    adapter = session.backend("transient", "chip1", resolution)
    tau = adapter.time_constant_s
    print(f"\nestimated thermal time constant: {tau * 1e3:.2f} ms")

    names = chip.flat_block_names()
    idle = {name: 10.0 / len(names) for name in names}
    burst = dict(idle)
    burst["core_layer/Core"] += 60.0  # the core lights up

    step_time = 5 * tau

    def workload(t: float):
        """Idle, then a core-dominated burst, then back to idle."""
        if step_time <= t < 3 * step_time:
            return burst
        return idle

    duration = 4 * step_time
    dt = tau / steps_per_time_constant
    print(f"simulating {duration * 1e3:.1f} ms of workload with dt = {dt * 1e3:.2f} ms ...")
    solution = session.solve_transient(
        "chip1", workload, duration_s=duration, dt_s=dt,
        resolution=resolution, store_every=2,
    )

    times = solution.history["times_s"]
    peaks = solution.history["peak_K"]
    means = solution.history["mean_K"]
    rows = []
    for index in range(0, len(times), max(len(times) // 10, 1)):
        rows.append(
            {
                "t (ms)": round(times[index] * 1e3, 2),
                "Junction T (K)": round(float(peaks[index]), 2),
                "Mean T (K)": round(float(means[index]), 2),
            }
        )
    print(format_table(rows, title="Thermal response to the power burst"))

    steady_burst = session.solve("chip1", burst, resolution=resolution)
    print(f"\nsteady-state junction temperature under the burst : {steady_burst.max_K:.2f} K")
    print(f"peak junction temperature reached during the burst: {peaks.max():.2f} K")
    print(f"temperature at the end of the cool-down            : {peaks[-1]:.2f} K "
          f"(ambient {chip.cooling.ambient_K:.2f} K)")
    print("\nThe burst drives the junction up towards its steady-state value with a "
          "time constant of a few milliseconds, and the die relaxes back towards "
          "idle after the workload ends — the transient behaviour a steady-state-"
          "only flow cannot see.")


if __name__ == "__main__":
    main()
