"""Transient thermal response of Chip 1 to a workload power step.

The paper's evaluation is steady-state; its conclusion lists broader thermal
analysis tasks as future work.  This example uses the repository's transient
extension (`repro.solvers.transient`) to answer a classic design question the
steady solver cannot: *how fast* does the junction temperature rise after a
power step, and how long does the die take to cool back down?

Run with:  python examples/transient_workload.py
"""

import numpy as np

from repro.chip import get_chip
from repro.evaluation import format_table
from repro.solvers import TransientFVMSolver


def main() -> None:
    chip = get_chip("chip1")
    solver = TransientFVMSolver(chip, nx=16, cells_per_layer=1)
    tau = solver.thermal_time_constant_estimate()
    print(chip.summary())
    print(f"\nestimated thermal time constant: {tau * 1e3:.2f} ms")

    names = chip.flat_block_names()
    idle = {name: 10.0 / len(names) for name in names}
    burst = dict(idle)
    burst["core_layer/Core"] += 60.0  # the core lights up

    step_time = 5 * tau

    def workload(t: float):
        """Idle, then a core-dominated burst, then back to idle."""
        if step_time <= t < 3 * step_time:
            return burst
        return idle

    duration = 4 * step_time
    dt = tau / 4
    print(f"simulating {duration * 1e3:.1f} ms of workload with dt = {dt * 1e3:.2f} ms ...")
    result = solver.solve(workload, duration_s=duration, dt_s=dt, store_every=2)

    peaks = result.peak_history()
    means = result.mean_history()
    rows = []
    for index in range(0, len(result.times_s), max(len(result.times_s) // 10, 1)):
        rows.append(
            {
                "t (ms)": round(result.times_s[index] * 1e3, 2),
                "Junction T (K)": round(float(peaks[index]), 2),
                "Mean T (K)": round(float(means[index]), 2),
            }
        )
    print(format_table(rows, title="Thermal response to the power burst"))

    steady_burst = solver.steady_state(burst)
    print(f"\nsteady-state junction temperature under the burst : {steady_burst.max_K:.2f} K")
    print(f"peak junction temperature reached during the burst: {peaks.max():.2f} K")
    print(f"temperature at the end of the cool-down            : {peaks[-1]:.2f} K "
          f"(ambient {chip.cooling.ambient_K:.2f} K)")
    print("\nThe burst drives the junction up towards its steady-state value with a "
          "time constant of a few milliseconds, and the die relaxes back towards "
          "idle after the workload ends — the transient behaviour a steady-state-"
          "only flow cannot see.")


if __name__ == "__main__":
    main()
