"""Quickstart: train SAU-FNO as a thermal surrogate for a 3D-IC.

This example walks the full pipeline on a small configuration:

1. build the single-core benchmark chip (Chip 1 of the paper),
2. generate training data by solving the steady heat-conduction PDE with the
   in-repo finite-volume solver for random power maps,
3. train the SAU-FNO operator on (power map -> temperature field) pairs,
4. evaluate it in physical units and compare one prediction against the
   solver field it is meant to replace.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.chip import get_chip
from repro.data import DatasetSpec, PowerSampler, generate_dataset
from repro.evaluation import format_table
from repro.metrics import evaluate_all, speedup
from repro.operators import SAUFNO2d
from repro.solvers import FVMSolver
from repro.training import Trainer, TrainingConfig


def main() -> None:
    resolution = 24
    chip = get_chip("chip1")
    print(chip.summary())
    print()

    # ------------------------------------------------------------------
    # 1. Generate a dataset with the FVM solver (the paper uses MTA here).
    # ------------------------------------------------------------------
    print("Generating training data with the finite-volume solver ...")
    spec = DatasetSpec(chip_name="chip1", resolution=resolution, num_samples=48, seed=0)
    dataset = generate_dataset(spec, verbose=True)
    split = dataset.split(train_fraction=0.8, rng=np.random.default_rng(0))
    print(f"dataset: {len(split.train)} train / {len(split.test)} test cases "
          f"at {resolution}x{resolution}\n")

    # ------------------------------------------------------------------
    # 2. Build and train SAU-FNO.
    # ------------------------------------------------------------------
    model = SAUFNO2d(
        in_channels=dataset.num_input_channels,
        out_channels=dataset.num_output_channels,
        width=16,
        modes1=8,
        modes2=8,
        num_fourier_layers=1,
        num_ufourier_layers=1,
        unet_base_channels=8,
        unet_levels=2,
        attention_dim=16,
    )
    print(f"SAU-FNO with {model.num_parameters()} parameters")
    trainer = Trainer(model, TrainingConfig(epochs=15, batch_size=4, learning_rate=2e-3))
    history = trainer.fit(split.train)
    print(f"trained for {history.epochs_run} epochs "
          f"({history.total_seconds:.1f}s, final loss {history.train_loss[-1]:.4f})\n")

    # ------------------------------------------------------------------
    # 3. Evaluate in kelvin on held-out power maps.
    # ------------------------------------------------------------------
    report = trainer.evaluate(split.test)
    print(format_table([{"Model": "SAU-FNO", **{k: round(v, 3) for k, v in report.as_dict().items()}}],
                       title="Held-out accuracy (kelvin / percent)"))
    print()

    # ------------------------------------------------------------------
    # 4. Compare one prediction against a fresh solver run.
    # ------------------------------------------------------------------
    sampler = PowerSampler(chip)
    case = sampler.sample(np.random.default_rng(42))
    solver = FVMSolver(chip, nx=resolution)
    field = solver.solve(case.assignment)
    prediction = trainer.predict(sampler.rasterize(case, resolution)[None])[0]

    operator_seconds = trainer.inference_seconds_per_case(split.test, repeats=1)
    print(f"unseen case with total power {case.total_W:.1f} W:")
    print(f"  solver junction temperature    : {field.max_K:.2f} K "
          f"({field.solve_seconds:.3f} s per solve)")
    print(f"  SAU-FNO junction temperature   : {prediction.max():.2f} K "
          f"({operator_seconds:.4f} s per prediction)")
    print(f"  speedup over the PDE solver    : {speedup(field.solve_seconds, operator_seconds):.0f}x")
    case_metrics = evaluate_all(prediction[None], field.power_layer_maps()[None])
    print(f"  per-case RMSE                  : {case_metrics.rmse:.3f} K")


if __name__ == "__main__":
    main()
