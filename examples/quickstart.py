"""Quickstart: train SAU-FNO as a thermal surrogate for a 3D-IC.

Everything goes through :class:`repro.ThermalSession` — the one-stop Python
API fronting the solvers, the data pipeline, the trainer and the serving
backends.  The walk-through:

1. solve one exact steady-state case for the single-core benchmark chip
   (Chip 1 of the paper) — and solve it again to see the session result
   cache answer for free,
2. generate training data by solving the steady heat-conduction PDE with the
   in-repo finite-volume solver for random power maps,
3. train the SAU-FNO operator on (power map -> temperature field) pairs and
   register it with the session,
4. ask the *same* session the same kind of question through the exact and
   the learned backend and compare accuracy and speed.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.evaluation import format_table
from repro.metrics import speedup
from repro.training import TrainingConfig


def main(resolution: int = 24, samples: int = 48, epochs: int = 15,
         batch_size: int = 4) -> None:
    session = repro.ThermalSession()
    chip = session.get_chip("chip1")
    print(chip.summary())
    print()

    # ------------------------------------------------------------------
    # 1. One exact solve — then the same query again, from the cache.
    # ------------------------------------------------------------------
    exact = session.solve("chip1", total_power_W=60.0, resolution=resolution)
    again = session.solve("chip1", total_power_W=60.0, resolution=resolution)
    print(f"exact solve: junction {exact.max_K:.2f} K in {exact.solve_seconds:.3f} s "
          f"(cached repeat: {again.cached}, "
          f"cache stats {session.result_cache.stats()['hits']} hit / "
          f"{session.result_cache.stats()['misses']} miss)\n")

    # ------------------------------------------------------------------
    # 2. Generate a dataset with the FVM solver (the paper uses MTA here).
    # ------------------------------------------------------------------
    print("Generating training data with the finite-volume solver ...")
    dataset = session.generate_dataset(
        "chip1", resolution=resolution, num_samples=samples, seed=0, verbose=True
    )
    split = dataset.split(train_fraction=0.8, rng=np.random.default_rng(0))
    print(f"dataset: {len(split.train)} train / {len(split.test)} test cases "
          f"at {resolution}x{resolution}\n")

    # ------------------------------------------------------------------
    # 3. Train SAU-FNO through the session and register it for serving.
    # ------------------------------------------------------------------
    trained = session.train(
        split.train,
        method="sau_fno",
        config={
            "width": 16, "modes1": 8, "modes2": 8,
            "num_fourier_layers": 1, "num_ufourier_layers": 1,
            "unet_base_channels": 8, "unet_levels": 2, "attention_dim": 16,
        },
        training=TrainingConfig(epochs=epochs, batch_size=batch_size, learning_rate=2e-3),
        register=True,
    )
    print(f"trained SAU-FNO ({trained.num_parameters} parameters) for "
          f"{trained.history.epochs_run} epochs ({trained.train_seconds:.1f}s, "
          f"final loss {trained.history.train_loss[-1]:.4f})\n")

    report = session.evaluate(trained, split.test)
    print(format_table(
        [{"Model": "SAU-FNO", **{k: round(v, 3) for k, v in report.as_dict().items()}}],
        title="Held-out accuracy (kelvin / percent)",
    ))
    print()

    # ------------------------------------------------------------------
    # 4. Same question, two engines: exact fvm vs the learned surrogate.
    # ------------------------------------------------------------------
    case = repro.PowerSampler(chip).sample(np.random.default_rng(42))
    exact = session.solve("chip1", case, resolution=resolution, include_maps=True)
    learned = session.solve("chip1", case, resolution=resolution,
                            backend="operator", include_maps=True)

    operator_seconds = trained.inference_seconds_per_case(split.test, repeats=1)
    errors = learned.error_vs(exact)
    print(f"unseen case with total power {case.total_W:.1f} W:")
    print(f"  solver junction temperature    : {exact.max_K:.2f} K "
          f"({exact.solve_seconds:.3f} s per solve)")
    print(f"  SAU-FNO junction temperature   : {learned.max_K:.2f} K "
          f"({operator_seconds:.4f} s per prediction)")
    print(f"  speedup over the PDE solver    : "
          f"{speedup(exact.solve_seconds, operator_seconds):.0f}x")
    print(f"  per-case RMSE                  : {errors['rmse_K']:.3f} K")


if __name__ == "__main__":
    main()
