"""Multi-fidelity transfer learning on Chip 1 (Section III-C / Table III).

Demonstrates the paper's data-efficiency recipe: pre-train SAU-FNO on many
cheap low-resolution FVM simulations, then fine-tune on a handful of
expensive high-resolution simulations with a 10x smaller learning rate, and
compare against training from scratch on the high-resolution data alone.
Dataset generation runs through the session facade (one cached factorisation
per fidelity); the transfer pipeline itself is the dedicated
:class:`~repro.training.TransferLearningTrainer`.

Run with:  python examples/transfer_learning_chip1.py
"""

import numpy as np

import repro
from repro.evaluation import format_table
from repro.operators import SAUFNO2d
from repro.training import (
    Trainer,
    TrainingConfig,
    TransferLearningConfig,
    TransferLearningTrainer,
)


def build_model(channels_in: int, channels_out: int) -> SAUFNO2d:
    return SAUFNO2d(
        channels_in,
        channels_out,
        width=16,
        modes1=8,
        modes2=8,
        num_fourier_layers=1,
        num_ufourier_layers=1,
        unet_base_channels=8,
        unet_levels=2,
        attention_dim=16,
    )


def main(low_resolution: int = 24, high_resolution: int = 40,
         num_low: int = 40, num_high: int = 16, epochs: int = 10) -> None:
    session = repro.ThermalSession()
    print(f"Generating low-fidelity ({low_resolution}x{low_resolution}) and "
          f"high-fidelity ({high_resolution}x{high_resolution}) datasets ...")
    low_fidelity, high_fidelity = session.generate_multifidelity_pair(
        "chip1",
        low_resolution=low_resolution,
        high_resolution=high_resolution,
        num_low=num_low,
        num_high=num_high,
        seed=0,
    )
    high_split = high_fidelity.split(0.7, rng=np.random.default_rng(0))
    low_solver_cost = float(np.sum(low_fidelity.metadata["solve_seconds"]))
    high_solver_cost = float(np.sum(high_fidelity.metadata["solve_seconds"]))
    print(f"  low-fidelity : {len(low_fidelity)} cases, solver time {low_solver_cost:.1f}s")
    print(f"  high-fidelity: {len(high_fidelity)} cases, solver time {high_solver_cost:.1f}s\n")

    training = TrainingConfig(epochs=epochs, batch_size=4, learning_rate=2e-3)

    # From scratch on the small high-fidelity set.
    print("Training from scratch on high-fidelity data only ...")
    scratch_model = build_model(high_fidelity.num_input_channels, high_fidelity.num_output_channels)
    scratch = Trainer(scratch_model, training)
    scratch_history = scratch.fit(high_split.train)
    scratch_metrics = scratch.evaluate(high_split.test)

    # Transfer learning: pre-train low fidelity, fine-tune high fidelity.
    print("Transfer learning: pre-train on low fidelity, fine-tune on high fidelity ...")
    transfer_model = build_model(low_fidelity.num_input_channels, low_fidelity.num_output_channels)
    pipeline = TransferLearningTrainer(
        transfer_model,
        TransferLearningConfig(
            pretrain=training, finetune_lr_scale=0.1,
            finetune_epochs=max(epochs // 2, 1),
        ),
    )
    result = pipeline.run(low_fidelity, high_split.train, high_split.test)

    rows = [
        {
            "Route": "from scratch (high-fidelity only)",
            **{k: round(v, 3) for k, v in scratch_metrics.as_dict().items()},
            "TrainTime(s)": round(scratch_history.total_seconds, 1),
        },
        {
            "Route": "transfer (pre-train + fine-tune)",
            **{k: round(v, 3) for k, v in result.metrics.as_dict().items()},
            "TrainTime(s)": round(result.total_seconds, 1),
        },
    ]
    print()
    print(format_table(rows, title="Table III style comparison on Chip 1"))
    print()
    print(
        "The transfer route replaces most high-fidelity simulations with cheap "
        "low-fidelity ones; with the paper's 4-6x cost gap between fidelities this "
        "is where the ~2.5x total data-generation saving comes from."
    )


if __name__ == "__main__":
    main()
